//! The modular driving pipeline: behaviour planner + PID feedback control.
//!
//! This is the CARLA-Autopilot analogue of Section III-B — waypoints from
//! the behaviour layer, a lateral controller (pure-pursuit geometry closed
//! by a PID on the steering actuation) and a longitudinal PID on speed,
//! both emitting *variation* commands that pass through the Eq. (1)
//! actuator smoothing inside the simulator.

use crate::behavior::{BehaviorConfig, BehaviorPlanner};
use crate::pid::{Pid, PidConfig};
use crate::Agent;
use drive_sim::geometry::angle_diff;
use drive_sim::vehicle::Actuation;
use drive_sim::world::World;
use serde::{Deserialize, Serialize};

/// Tunables of the modular agent's controllers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModularConfig {
    /// Behaviour-layer configuration.
    pub behavior: BehaviorConfig,
    /// Steering-loop PID (error = desired normalized steer − actual).
    pub steer_pid: PidConfig,
    /// Speed-loop PID (error = desired speed − actual, m/s).
    pub speed_pid: PidConfig,
    /// Waypoints of lookahead for the pure-pursuit target.
    pub lookahead: usize,
}

impl Default for ModularConfig {
    fn default() -> Self {
        ModularConfig {
            behavior: BehaviorConfig::default(),
            steer_pid: PidConfig {
                kp: 2.2,
                ki: 0.8,
                kd: 0.02,
                limit: 1.0,
                integral_limit: 1.0,
            },
            speed_pid: PidConfig {
                kp: 0.7,
                ki: 0.08,
                kd: 0.0,
                limit: 1.0,
                integral_limit: 0.6,
            },
            lookahead: 5,
        }
    }
}

/// The modular pipeline agent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModularAgent {
    config: ModularConfig,
    planner: BehaviorPlanner,
    steer_pid: Pid,
    speed_pid: Pid,
    /// Signed cross-track error of the last step, meters (for metrics).
    last_cross_track: f64,
    /// Reused plan buffer; not part of the logical agent state.
    #[serde(skip, default)]
    plan_scratch: drive_sim::waypoints::Path,
}

// The scratch buffer is excluded from equality: a deserialized agent
// (empty scratch) must compare equal to the live agent it was saved from.
impl PartialEq for ModularAgent {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.planner == other.planner
            && self.steer_pid == other.steer_pid
            && self.speed_pid == other.speed_pid
            && self.last_cross_track == other.last_cross_track
    }
}

impl ModularAgent {
    /// Creates an agent starting in `initial_lane`.
    pub fn new(config: ModularConfig, initial_lane: usize) -> Self {
        ModularAgent {
            planner: BehaviorPlanner::new(config.behavior, initial_lane),
            steer_pid: Pid::new(config.steer_pid),
            speed_pid: Pid::new(config.speed_pid),
            config,
            last_cross_track: 0.0,
            plan_scratch: drive_sim::waypoints::Path::default(),
        }
    }

    /// The behaviour planner (exposed for reward shaping and metrics).
    pub fn planner(&self) -> &BehaviorPlanner {
        &self.planner
    }

    /// Cross-track error at the most recent [`Agent::act`] call, meters.
    pub fn last_cross_track(&self) -> f64 {
        self.last_cross_track
    }
}

impl Agent for ModularAgent {
    fn reset(&mut self, world: &World) {
        let lane = world.scenario().road.lane_of(world.ego().pose.position.y);
        self.planner = BehaviorPlanner::new(self.config.behavior, lane);
        self.steer_pid.reset();
        self.speed_pid.reset();
        self.last_cross_track = 0.0;
    }

    fn act(&mut self, world: &World) -> Actuation {
        let dt = world.scenario().dt;
        let ego = world.ego();
        let pos = ego.pose.position;
        self.planner.plan_into(world, &mut self.plan_scratch);
        let path = &self.plan_scratch;
        let proj = path.project(pos, ego.pose.heading);

        // Pure-pursuit geometry to a lookahead waypoint, closed by a PID on
        // the realized steering actuation.
        let look = path.lookahead(pos, self.config.lookahead);
        self.last_cross_track = proj.cross_track;
        let to = look.position - pos;
        let heading_err = angle_diff(to.angle(), ego.pose.heading);
        let ld = to.norm().max(1.0);
        let wheelbase = ego.params.wheelbase();
        let delta_des = (2.0 * wheelbase * heading_err.sin() / ld).atan();
        let s_des = (delta_des / ego.params.max_steer).clamp(-1.0, 1.0);
        let nu = self.steer_pid.step(s_des - ego.actuation.steer, dt);

        let v_des = self.planner.desired_speed(world);
        let gamma = self.speed_pid.step(v_des - ego.speed, dt);
        Actuation::new(nu, gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_sim::scenario::Scenario;
    use drive_sim::world::{Termination, World};

    fn run_episode(mut world: World) -> (World, ModularAgent) {
        let mut agent = ModularAgent::new(ModularConfig::default(), 1);
        agent.reset(&world);
        while !world.is_done() {
            let a = agent.act(&world);
            world.step(a);
        }
        (world, agent)
    }

    #[test]
    fn tracks_empty_lane_tightly() {
        let mut s = Scenario::default();
        s.npcs.clear();
        s.max_steps = 150;
        let (world, agent) = run_episode(World::new(s));
        assert_eq!(world.termination(), Some(Termination::TimeLimit));
        // Straight lane keeping: sub-decimeter tracking.
        assert!(
            agent.last_cross_track().abs() < 0.1,
            "cross track {}",
            agent.last_cross_track()
        );
        // Speed regulated near the 16 m/s reference.
        assert!(
            (world.ego().speed - 16.0).abs() < 0.5,
            "speed {}",
            world.ego().speed
        );
    }

    #[test]
    fn passes_all_npcs_without_collision() {
        // The paper's modular agent passes all six NPCs collision-free.
        let (world, _) = run_episode(World::new(Scenario::default()));
        assert_eq!(
            world.termination(),
            Some(Termination::TimeLimit),
            "no collision expected"
        );
        assert_eq!(world.passed_count(), 6, "must overtake all six NPCs");
    }

    #[test]
    fn reset_restores_initial_lane_choice() {
        let world = World::new(Scenario::default());
        let mut agent = ModularAgent::new(ModularConfig::default(), 1);
        agent.reset(&world);
        assert_eq!(agent.planner().target_lane(), 1);
    }
}
