//! Property-based tests of the seeded scenario generator: every spec drawn
//! from an arbitrary seed validates (including under per-episode spawn
//! jitter), and the same seed always yields an identical scenario.

use drive_seed::SeedTree;
use drive_sim::generate::{generate, ScenarioAxes, SpeedMix, TopologyKind, TrafficDensity};
use drive_sim::world::World;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FAULTS: [f64; 4] = [0.0, 0.25, 0.5, 1.0];

fn axes_from(t: usize, d: usize, m: usize, f: usize) -> ScenarioAxes {
    ScenarioAxes {
        topology: TopologyKind::ALL[t],
        density: TrafficDensity::ALL[d],
        speed_mix: SpeedMix::ALL[m],
        fault_intensity: FAULTS[f],
    }
}

proptest! {
    /// Validity: any (seed, axes) pair produces a scenario that passes
    /// `Scenario::validate`, and stays valid under the spawn jitter the
    /// episode runners apply (`World::new` panics otherwise).
    #[test]
    fn generated_specs_always_validate(
        seed in proptest::arbitrary::any::<u64>(),
        jitter_seed in proptest::arbitrary::any::<u64>(),
        t in 0usize..3, d in 0usize..3, m in 0usize..3, f in 0usize..4,
    ) {
        let axes = axes_from(t, d, m, f);
        let node = SeedTree::root(seed).child("gen");
        let g = generate(axes, &node);
        prop_assert!(g.spec.scenario().validate().is_ok());
        prop_assert!(!g.spec.name.is_empty());
        // Jittered variants must construct without panicking.
        let mut rng = StdRng::seed_from_u64(jitter_seed);
        let jittered = g.spec.scenario().jittered(&mut rng);
        let world = World::new(jittered);
        prop_assert!(world.scenario().validate().is_ok());
        // The requested topology materialized.
        prop_assert_eq!(
            world.scenario().road.topology.label(),
            axes.topology.label()
        );
    }

    /// Determinism: the same seed and axes regenerate an identical
    /// scenario, fault schedule included; sibling nodes draw fresh traffic.
    #[test]
    fn same_seed_same_scenario(
        seed in proptest::arbitrary::any::<u64>(),
        t in 0usize..3, d in 0usize..3, m in 0usize..3, f in 0usize..4,
    ) {
        let axes = axes_from(t, d, m, f);
        let a = generate(axes, &SeedTree::root(seed).child("gen"));
        let b = generate(axes, &SeedTree::root(seed).child("gen"));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.spec.fingerprint(), b.spec.fingerprint());
        let c = generate(axes, &SeedTree::root(seed).child("gen").child("other"));
        prop_assert!(
            a.spec.fingerprint() != c.spec.fingerprint(),
            "sibling node must draw fresh traffic"
        );
    }
}
