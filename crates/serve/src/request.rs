//! Requests, typed outcomes, and reconciling counters.
//!
//! The serving layer's core accounting invariant: **every submitted
//! request gets exactly one typed outcome** — served, degraded, shed, or
//! timed out. Nothing is dropped silently: load shedding is a first-class
//! outcome with a reason, not a missing response, and [`Counters`] can
//! prove at drain time that the books balance.

use crate::ladder::Rung;
use drive_sim::vehicle::Actuation;

/// One inference request: an observation frame plus its timing envelope.
/// Times are microseconds on the owning clock — virtual in the
/// deterministic simulator, `Instant`-relative in the threaded server.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-assigned identifier (unique per run).
    pub id: u64,
    /// The stacked observation frame.
    pub obs: Vec<f32>,
    /// When the request entered the queue, µs.
    pub enqueued_at_us: u64,
    /// Relative deadline, µs: the response must be produced within this
    /// long of `enqueued_at_us` or the request times out.
    pub deadline_us: u64,
}

impl Request {
    /// Absolute expiry time, saturating.
    pub fn expires_at_us(&self) -> u64 {
        self.enqueued_at_us.saturating_add(self.deadline_us)
    }
}

/// Why a request was shed instead of queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was at capacity — backpressure.
    QueueFull,
    /// The server was draining and no longer admits work.
    Closing,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "queue full"),
            ShedReason::Closing => write!(f, "closing"),
        }
    }
}

/// The one typed resolution every request receives.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Answered by the full pipeline at the [`Rung::Full`] rung.
    Served {
        /// The computed actuation.
        action: Actuation,
        /// Enqueue-to-response latency, µs.
        latency_us: u64,
    },
    /// Answered, but by a degraded rung of the ladder.
    Degraded {
        /// Which rung produced the answer.
        rung: Rung,
        /// The computed actuation.
        action: Actuation,
        /// Enqueue-to-response latency, µs.
        latency_us: u64,
    },
    /// Rejected before queueing.
    Shed {
        /// Why admission failed.
        reason: ShedReason,
    },
    /// Expired before a worker could answer.
    TimedOut {
        /// How long the request waited before expiring, µs.
        waited_us: u64,
    },
}

impl Outcome {
    /// The outcome's kind, for counting.
    pub fn kind(&self) -> OutcomeKind {
        match self {
            Outcome::Served { .. } => OutcomeKind::Served,
            Outcome::Degraded { .. } => OutcomeKind::Degraded,
            Outcome::Shed { .. } => OutcomeKind::Shed,
            Outcome::TimedOut { .. } => OutcomeKind::TimedOut,
        }
    }

    /// The produced action, when one exists.
    pub fn action(&self) -> Option<Actuation> {
        match self {
            Outcome::Served { action, .. } | Outcome::Degraded { action, .. } => Some(*action),
            _ => None,
        }
    }

    /// Enqueue-to-response latency for answered requests, µs.
    pub fn latency_us(&self) -> Option<u64> {
        match self {
            Outcome::Served { latency_us, .. } | Outcome::Degraded { latency_us, .. } => {
                Some(*latency_us)
            }
            _ => None,
        }
    }
}

/// The four resolution kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutcomeKind {
    /// Full-pipeline answer.
    Served,
    /// Degraded-rung answer.
    Degraded,
    /// Rejected at admission.
    Shed,
    /// Expired in the queue.
    TimedOut,
}

/// Request accounting. `submitted` counts every request a client
/// attempted; the four outcome counters partition them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Requests submitted (admitted or not).
    pub submitted: u64,
    /// Full-pipeline answers.
    pub served: u64,
    /// Degraded answers.
    pub degraded: u64,
    /// Shed for backpressure.
    pub shed_queue_full: u64,
    /// Shed because the server was draining.
    pub shed_closing: u64,
    /// Deadline expiries.
    pub timed_out: u64,
}

impl Counters {
    /// Records one resolution.
    pub fn record(&mut self, outcome: &Outcome) {
        match outcome {
            Outcome::Served { .. } => self.served += 1,
            Outcome::Degraded { .. } => self.degraded += 1,
            Outcome::Shed {
                reason: ShedReason::QueueFull,
            } => self.shed_queue_full += 1,
            Outcome::Shed {
                reason: ShedReason::Closing,
            } => self.shed_closing += 1,
            Outcome::TimedOut { .. } => self.timed_out += 1,
        }
    }

    /// Total requests that received an outcome.
    pub fn resolved(&self) -> u64 {
        self.served + self.degraded + self.shed_queue_full + self.shed_closing + self.timed_out
    }

    /// Total sheds of either reason.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_closing
    }

    /// Checks the books: every submitted request resolved exactly once.
    ///
    /// # Errors
    ///
    /// Returns a description of the imbalance when the partition does not
    /// sum to `submitted` — the "silent request loss" failure this layer
    /// exists to make impossible.
    pub fn reconcile(&self) -> Result<(), String> {
        if self.resolved() == self.submitted {
            Ok(())
        } else {
            Err(format!(
                "request accounting broken: submitted {} != resolved {} \
                 (served {} + degraded {} + shed {} + timed_out {})",
                self.submitted,
                self.resolved(),
                self.served,
                self.degraded,
                self.shed(),
                self.timed_out
            ))
        }
    }

    /// Element-wise sum (merging per-client tallies).
    pub fn merge(&mut self, other: &Counters) {
        self.submitted += other.submitted;
        self.served += other.served;
        self.degraded += other.degraded;
        self.shed_queue_full += other.shed_queue_full;
        self.shed_closing += other.shed_closing;
        self.timed_out += other.timed_out;
    }
}

impl std::fmt::Display for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submitted={} served={} degraded={} shed_full={} shed_closing={} timed_out={}",
            self.submitted,
            self.served,
            self.degraded,
            self.shed_queue_full,
            self.shed_closing,
            self.timed_out
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_partition_and_reconcile() {
        let mut c = Counters::default();
        let outcomes = [
            Outcome::Served {
                action: Actuation::new(0.1, 0.2),
                latency_us: 900,
            },
            Outcome::Degraded {
                rung: Rung::Fallback,
                action: Actuation::new(0.0, -0.1),
                latency_us: 100,
            },
            Outcome::Shed {
                reason: ShedReason::QueueFull,
            },
            Outcome::Shed {
                reason: ShedReason::Closing,
            },
            Outcome::TimedOut { waited_us: 5000 },
        ];
        for o in &outcomes {
            c.submitted += 1;
            c.record(o);
        }
        assert_eq!(c.resolved(), 5);
        c.reconcile().expect("balanced");
        c.submitted += 1;
        let err = c.reconcile().expect_err("imbalanced");
        assert!(err.contains("submitted 6 != resolved 5"), "{err}");
    }

    #[test]
    fn outcome_accessors() {
        let served = Outcome::Served {
            action: Actuation::new(0.5, 0.0),
            latency_us: 42,
        };
        assert_eq!(served.kind(), OutcomeKind::Served);
        assert_eq!(served.latency_us(), Some(42));
        assert_eq!(served.action().unwrap().steer, 0.5);
        let shed = Outcome::Shed {
            reason: ShedReason::QueueFull,
        };
        assert_eq!(shed.kind(), OutcomeKind::Shed);
        assert_eq!(shed.action(), None);
        assert_eq!(shed.latency_us(), None);
    }

    #[test]
    fn merge_sums_elementwise() {
        let mut a = Counters {
            submitted: 3,
            served: 2,
            timed_out: 1,
            ..Counters::default()
        };
        let b = Counters {
            submitted: 2,
            degraded: 1,
            shed_queue_full: 1,
            ..Counters::default()
        };
        a.merge(&b);
        assert_eq!(a.submitted, 5);
        a.reconcile().expect("merged books balance");
    }

    #[test]
    fn expiry_saturates() {
        let r = Request {
            id: 0,
            obs: vec![],
            enqueued_at_us: u64::MAX - 5,
            deadline_us: 100,
        };
        assert_eq!(r.expires_at_us(), u64::MAX);
    }
}
