//! Element-wise activation functions.

use crate::mat::Mat;
use serde::{Deserialize, Serialize};

/// The activation functions used by the policy and critic networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Pass-through (used for output layers).
    Identity,
}

impl Activation {
    /// Applies the activation element-wise, returning a new matrix.
    pub fn forward(self, x: &Mat) -> Mat {
        let mut y = x.clone();
        self.apply_inplace(&mut y);
        y
    }

    /// Applies the activation element-wise in place (allocation-free
    /// [`Activation::forward`] for scratch-buffer pipelines).
    pub fn apply_inplace(self, x: &mut Mat) {
        match self {
            Activation::Relu => x.map_inplace(|v| v.max(0.0)),
            Activation::Tanh => x.map_inplace(f32::tanh),
            Activation::Identity => {}
        }
    }

    /// Chain-rule backward: given the *output* `y = f(x)` and upstream
    /// gradient, returns the gradient with respect to `x`.
    ///
    /// Both ReLU and tanh derivatives are expressible from the output alone,
    /// which saves caching inputs.
    pub fn backward(self, y: &Mat, grad_out: &Mat) -> Mat {
        let mut g = grad_out.clone();
        self.backward_inplace(y, &mut g);
        g
    }

    /// In-place chain-rule backward: scales the upstream gradient `grad`
    /// by the activation derivative evaluated from the output `y`
    /// (allocation-free [`Activation::backward`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch between `y` and `grad`.
    pub fn backward_inplace(self, y: &Mat, grad: &mut Mat) {
        assert_eq!((y.rows(), y.cols()), (grad.rows(), grad.cols()));
        match self {
            Activation::Relu => {
                for (gv, &yv) in grad.data_mut().iter_mut().zip(y.data()) {
                    if yv <= 0.0 {
                        *gv = 0.0;
                    }
                }
            }
            Activation::Tanh => {
                for (gv, &yv) in grad.data_mut().iter_mut().zip(y.data()) {
                    *gv *= 1.0 - yv * yv;
                }
            }
            Activation::Identity => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_clamps_negatives() {
        let x = Mat::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 3.0]);
        let y = Activation::Relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 3.0]);
    }

    #[test]
    fn tanh_forward_saturates() {
        let x = Mat::from_vec(1, 2, vec![100.0, -100.0]);
        let y = Activation::Tanh.forward(&x);
        assert!((y.data()[0] - 1.0).abs() < 1e-6);
        assert!((y.data()[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn backward_finite_difference() {
        for act in [Activation::Relu, Activation::Tanh, Activation::Identity] {
            let x = Mat::from_vec(1, 3, vec![0.3, -0.4, 1.2]);
            let y = act.forward(&x);
            let grad_out = Mat::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
            let g = act.backward(&y, &grad_out);
            let eps = 1e-3f32;
            for c in 0..3 {
                let mut xp = x.clone();
                xp.set(0, c, x.get(0, c) + eps);
                let up: f32 = act.forward(&xp).data().iter().sum();
                xp.set(0, c, x.get(0, c) - eps);
                let down: f32 = act.forward(&xp).data().iter().sum();
                let fd = (up - down) / (2.0 * eps);
                assert!(
                    (fd - g.get(0, c)).abs() < 1e-2,
                    "{act:?} d[{c}] fd {fd} vs {}",
                    g.get(0, c)
                );
            }
        }
    }

    #[test]
    fn identity_backward_passes_through() {
        let y = Mat::from_vec(1, 2, vec![5.0, -5.0]);
        let g = Mat::from_vec(1, 2, vec![0.1, 0.2]);
        assert_eq!(Activation::Identity.backward(&y, &g), g);
    }
}
