//! Quick calibration check: the trained e2e victim vs the trained camera
//! attacker across budgets (run after `prepare`).

use attack_core::prelude::*;
use drive_agents::prelude::*;
use drive_metrics::prelude::*;
use drive_nn::checkpoint;
use drive_sim::prelude::*;

fn main() {
    let victim = checkpoint::decode_policy(
        &checkpoint::load_from_file("artifacts/victim_e2e.ckpt").expect("run prepare first"),
    )
    .unwrap();
    let attacker = checkpoint::load_from_file("artifacts/attacker_camera.ckpt")
        .ok()
        .and_then(|t| checkpoint::decode_policy(&t).ok());
    let scenario = Scenario::default();
    let features = FeatureConfig::default();
    let adv = AdvReward::default();

    let mut agent = E2eAgent::new(victim.clone(), features.clone(), 0, true);
    let recs = run_episodes(&mut agent, &scenario, 20, 700);
    let s = CellSummary::from_records(&recs);
    println!(
        "victim nominal: return={:.1} passed={:.2} collisions={:.0}%",
        s.nominal.mean,
        s.mean_passed,
        s.collision_rate * 100.0
    );

    let Some(attacker) = attacker else {
        println!("(no camera attacker checkpoint yet — nominal check only)");
        return;
    };
    println!("budget  success  nominal  effort  ttc");
    for eps in [0.1, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0] {
        let mut agent = E2eAgent::new(victim.clone(), features.clone(), 0, true);
        let recs = run_attacked_episodes(
            &mut agent,
            |seed| {
                Some(LearnedAttacker::new(
                    attacker.clone(),
                    AttackerSensor::camera(features.clone()),
                    AttackBudget::new(eps),
                    seed,
                    true,
                ))
            },
            &adv,
            &scenario,
            20,
            700,
        );
        let s = CellSummary::from_records(&recs);
        let ttc = time_to_collision_stats(&recs)
            .map(|(m, _)| format!("{m:.2}s"))
            .unwrap_or("-".into());
        println!(
            "{eps:<7.2} {:>4.0}%   {:>7.1}  {:.2}    {ttc}",
            s.success_rate * 100.0,
            s.nominal.mean,
            s.mean_effort
        );
    }
}
