//! Trains the end-to-end victim policy at full scale (behaviour cloning of
//! the modular teacher + SAC refinement, ~4 minutes) and saves it under
//! `artifacts/victim_e2e.ckpt`, where the experiment harnesses pick it up.
//!
//! ```sh
//! cargo run --release -p drive-agents --example train_full
//! ```

use drive_agents::training::{evaluate_policy, train_victim, VictimTrainConfig};
use drive_sim::prelude::*;
use std::time::Instant;

fn main() {
    let scenario = Scenario::default();
    let features = FeatureConfig::default();
    let config = VictimTrainConfig::default();
    let t0 = Instant::now();
    let policy = train_victim(&scenario, &features, &config);
    println!("trained in {:.1}s", t0.elapsed().as_secs_f64());
    let (ret, passed) = evaluate_policy(&policy, &scenario, &features, 30, 5000);
    println!("eval over 30 episodes: return={ret:.1} passed={passed:.2}");
    let text = drive_nn::checkpoint::encode_policy(&policy);
    drive_nn::checkpoint::save_to_file("artifacts/victim_e2e.ckpt", &text)
        .expect("artifacts directory must be writable");
    println!("saved artifacts/victim_e2e.ckpt");
}
