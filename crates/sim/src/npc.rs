//! Non-player-character (NPC) traffic vehicles.
//!
//! The paper's scenario has six NPC vehicles traveling at a slow reference
//! speed (6 m/s) that the ego vehicle must overtake. Each NPC is a full
//! [`crate::vehicle::Vehicle`] driven by a simple lane-keeping
//! controller with car-following: it holds its lane center, regulates to its
//! reference speed, and slows down behind any slower vehicle ahead in the
//! same lane.

use crate::road::Road;
use crate::vehicle::{Actuation, Vehicle};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Gains and limits of the NPC lane-keeping controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NpcControllerParams {
    /// Proportional gain on lateral offset, 1/m.
    pub k_lateral: f64,
    /// Proportional gain on heading error.
    pub k_heading: f64,
    /// Proportional gain on speed error, s/m.
    pub k_speed: f64,
    /// Desired time headway to the vehicle ahead, seconds.
    pub time_headway: f64,
    /// Minimum standstill gap, meters.
    pub min_gap: f64,
    /// Distance before an ending lane's merge deadline at which the NPC
    /// starts steering for the merge target lane, meters.
    #[serde(default = "default_merge_lookahead")]
    pub merge_lookahead: f64,
}

fn default_merge_lookahead() -> f64 {
    60.0
}

impl Default for NpcControllerParams {
    fn default() -> Self {
        NpcControllerParams {
            k_lateral: 0.15,
            k_heading: 1.2,
            k_speed: 0.5,
            time_headway: 1.5,
            min_gap: 6.0,
            merge_lookahead: default_merge_lookahead(),
        }
    }
}

/// An NPC vehicle: dynamics plus its lane assignment and reference speed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Npc {
    /// Underlying vehicle dynamics.
    pub vehicle: Vehicle,
    /// Lane this NPC keeps.
    pub lane: usize,
    /// Cruise speed when unobstructed, m/s.
    pub ref_speed: f64,
    /// Controller parameters.
    pub controller: NpcControllerParams,
}

/// Minimal view of another vehicle used for car-following decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeadInfo {
    /// Longitudinal position (x) of the lead vehicle's center.
    pub x: f64,
    /// Lane the lead vehicle currently occupies.
    pub lane: usize,
    /// Speed of the lead vehicle, m/s.
    pub speed: f64,
}

/// One row of a [`LeadTable`]: a vehicle's car-following view plus the
/// index it had in the serial `others` iteration order (NPCs in index
/// order, ego last).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeadEntry {
    /// Longitudinal position (x) of the vehicle's center.
    pub x: f64,
    /// Speed, m/s.
    pub speed: f64,
    /// Lane the vehicle currently occupies ([`Road::lane_index_at`]).
    pub lane: usize,
    /// Serial-order index: NPC index, or `npcs.len()` for the ego.
    pub index: usize,
}

/// Per-world lead bookkeeping rebuilt once per control step: every vehicle
/// bucketed by lane and sorted by `(x, index)`, plus the per-lane
/// [`Road`] topology queries hoisted out of the per-NPC loop.
///
/// This replaces the serial engine's O(N²) scan (each NPC filtering a
/// fresh `others` slice) with one O(N log N) build and O(log N) queries,
/// while reproducing the serial winners bit-for-bit:
///
/// * the serial lead scan is `filter(lane == L && x > x0).min_by(x)`,
///   and `Iterator::min_by` keeps the FIRST element among equal minima —
///   iteration order is `index` order. Sorting a lane's entries by
///   `(x, index)` makes "first entry past `x0`" exactly that winner. The
///   querying NPC's own row never matches (`x > x0` is strict).
/// * the serial blocker scan minimizes `|x - x0|` with the same
///   first-minimal rule, so the table query tie-breaks equal `|dx|` keys
///   (compared via `total_cmp`, like the serial scan) on `index` and must
///   skip the querying NPC's own row explicitly.
#[derive(Debug, Clone, Default)]
pub struct LeadTable {
    /// All vehicles, sorted by `(lane, x, index)`.
    entries: Vec<LeadEntry>,
    /// Half-open `[start, end)` ranges into `entries`, one per lane.
    lanes: Vec<(u32, u32)>,
    /// Hoisted [`Road::lane_center_y`] per lane.
    center_y: Vec<f64>,
    /// Hoisted [`Road::lane_end_x`] per lane.
    end_x: Vec<Option<f64>>,
    /// Hoisted [`Road::merge_target`] per lane.
    merge_target: Vec<usize>,
}

impl LeadTable {
    /// Rebuilds the table from the pre-step world state. Reuses all
    /// buffers; steady-state rebuilds make no heap allocations.
    pub fn rebuild(&mut self, road: &Road, npcs: &[Npc], ego: &Vehicle) {
        let total = road.total_lanes();
        self.center_y.clear();
        self.end_x.clear();
        self.merge_target.clear();
        for lane in 0..total {
            self.center_y.push(road.lane_center_y(lane));
            self.end_x.push(road.lane_end_x(lane));
            self.merge_target.push(road.merge_target(lane));
        }
        self.entries.clear();
        for (index, n) in npcs.iter().enumerate() {
            let p = n.vehicle.pose.position;
            self.entries.push(LeadEntry {
                x: p.x,
                speed: n.vehicle.speed,
                lane: road.lane_index_at(p.x, p.y),
                index,
            });
        }
        let ep = ego.pose.position;
        self.entries.push(LeadEntry {
            x: ep.x,
            speed: ego.speed,
            lane: road.lane_index_at(ep.x, ep.y),
            index: npcs.len(),
        });
        self.entries.sort_unstable_by(|a, b| {
            a.lane
                .cmp(&b.lane)
                .then(a.x.total_cmp(&b.x))
                .then(a.index.cmp(&b.index))
        });
        self.lanes.clear();
        self.lanes.resize(total, (0, 0));
        let mut i = 0;
        while i < self.entries.len() {
            let lane = self.entries[i].lane;
            let start = i as u32;
            while i < self.entries.len() && self.entries[i].lane == lane {
                i += 1;
            }
            self.lanes[lane] = (start, i as u32);
        }
    }

    /// Entries occupying `lane`, sorted by `(x, index)`.
    fn lane_entries(&self, lane: usize) -> &[LeadEntry] {
        let (s, e) = self.lanes[lane];
        &self.entries[s as usize..e as usize]
    }

    /// Hoisted [`Road::lane_center_y`].
    pub fn center_y(&self, lane: usize) -> f64 {
        self.center_y[lane]
    }

    /// Hoisted [`Road::lane_end_x`].
    pub fn end_x(&self, lane: usize) -> Option<f64> {
        self.end_x[lane]
    }

    /// Hoisted [`Road::merge_target`].
    pub fn merge_target(&self, lane: usize) -> usize {
        self.merge_target[lane]
    }

    /// The nearest vehicle strictly ahead of `x` in `lane` — the serial
    /// `min_by` winner (minimal `x`, lowest `index` among ties).
    pub fn nearest_ahead(&self, lane: usize, x: f64) -> Option<&LeadEntry> {
        let entries = self.lane_entries(lane);
        let first_ahead = entries.partition_point(|e| e.x <= x);
        entries.get(first_ahead)
    }

    /// The vehicle in `lane` (excluding serial index `own`) closest to `x`
    /// with `|e.x - x| < gap` — the serial blocker-scan winner (minimal
    /// `|dx|` via `total_cmp`, lowest `index` among ties).
    pub fn nearest_alongside(
        &self,
        lane: usize,
        x: f64,
        gap: f64,
        own: usize,
    ) -> Option<&LeadEntry> {
        let mut best: Option<(&LeadEntry, f64)> = None;
        for e in self.lane_entries(lane) {
            if e.x - x >= gap {
                // Sorted by x: everything later is at least as far ahead.
                break;
            }
            let dx = (e.x - x).abs();
            if e.index == own || dx >= gap {
                continue;
            }
            let better = match &best {
                None => true,
                Some((b, bdx)) => match dx.total_cmp(bdx) {
                    Ordering::Less => true,
                    Ordering::Equal => e.index < b.index,
                    Ordering::Greater => false,
                },
            };
            if better {
                best = Some((e, dx));
            }
        }
        best.map(|(e, _)| e)
    }
}

impl Npc {
    /// Creates an NPC keeping `lane` at `ref_speed`.
    pub fn new(vehicle: Vehicle, lane: usize, ref_speed: f64) -> Self {
        Npc {
            vehicle,
            lane,
            ref_speed,
            controller: NpcControllerParams::default(),
        }
    }

    /// The lane this NPC is currently steering for: its assigned lane until
    /// an upcoming merge deadline ([`Road::lane_end_x`]) forces it into the
    /// merge target. On a straight road this is always the assigned lane.
    pub fn active_lane(&self, road: &Road) -> usize {
        match road.lane_end_x(self.lane) {
            Some(end) if self.vehicle.pose.position.x + self.controller.merge_lookahead >= end => {
                road.merge_target(self.lane)
            }
            _ => self.lane,
        }
    }

    /// Computes this NPC's actuation-variation command.
    ///
    /// `others` lists every other vehicle on the road (ego included); the
    /// nearest one ahead in the active lane bounds the target speed through
    /// a constant-time-headway rule. When the assigned lane is ending, the
    /// NPC steers for the merge target lane and yields to any vehicle
    /// already alongside there.
    pub fn control(&self, road: &Road, others: &[LeadInfo]) -> Actuation {
        let p = &self.controller;
        let pos = self.vehicle.pose.position;
        let lane = self.active_lane(road);
        let offset = pos.y - road.lane_center_y(lane);
        let steer = -(p.k_lateral * offset + p.k_heading * self.vehicle.pose.heading);

        // Car following: find the nearest lead in the active lane.
        let mut target_speed = self.ref_speed;
        let lead = others
            .iter()
            .filter(|o| o.lane == lane && o.x > pos.x)
            .min_by(|a, b| a.x.total_cmp(&b.x));
        if let Some(lead) = lead {
            let gap = lead.x - pos.x;
            let desired_gap = p.min_gap + p.time_headway * self.vehicle.speed;
            if gap < desired_gap {
                // Scale down towards the lead's speed as the gap closes.
                let ratio = ((gap - p.min_gap) / (desired_gap - p.min_gap)).clamp(0.0, 1.0);
                target_speed = lead.speed + ratio * (self.ref_speed - lead.speed).max(0.0);
                target_speed = target_speed.min(self.ref_speed);
            }
        }
        if lane != self.lane {
            // Mid-merge: if someone in the target lane is alongside, drop
            // below their speed so the gap opens behind them.
            let blocker = others
                .iter()
                .filter(|o| o.lane == lane && (o.x - pos.x).abs() < p.min_gap)
                .min_by(|a, b| (a.x - pos.x).abs().total_cmp(&(b.x - pos.x).abs()));
            if let Some(blocker) = blocker {
                target_speed = target_speed.min((blocker.speed - 1.0).max(0.0));
            }
        }
        let thrust = p.k_speed * (target_speed - self.vehicle.speed);
        Actuation::new(steer, thrust)
    }

    /// [`Npc::control`] evaluated against a pre-built [`LeadTable`]
    /// instead of a per-NPC `others` slice. `own` is this NPC's index in
    /// the world's NPC list. Bit-identical to the serial scan: same
    /// expressions in the same order, same tie-breaking (see
    /// [`LeadTable`]).
    pub fn control_batched(&self, leads: &LeadTable, own: usize) -> Actuation {
        let p = &self.controller;
        let pos = self.vehicle.pose.position;
        let lane = match leads.end_x(self.lane) {
            Some(end) if pos.x + p.merge_lookahead >= end => leads.merge_target(self.lane),
            _ => self.lane,
        };
        let offset = pos.y - leads.center_y(lane);
        let steer = -(p.k_lateral * offset + p.k_heading * self.vehicle.pose.heading);

        let mut target_speed = self.ref_speed;
        if let Some(lead) = leads.nearest_ahead(lane, pos.x) {
            let gap = lead.x - pos.x;
            let desired_gap = p.min_gap + p.time_headway * self.vehicle.speed;
            if gap < desired_gap {
                let ratio = ((gap - p.min_gap) / (desired_gap - p.min_gap)).clamp(0.0, 1.0);
                target_speed = lead.speed + ratio * (self.ref_speed - lead.speed).max(0.0);
                target_speed = target_speed.min(self.ref_speed);
            }
        }
        if lane != self.lane {
            if let Some(blocker) = leads.nearest_alongside(lane, pos.x, p.min_gap, own) {
                target_speed = target_speed.min((blocker.speed - 1.0).max(0.0));
            }
        }
        let thrust = p.k_speed * (target_speed - self.vehicle.speed);
        Actuation::new(steer, thrust)
    }

    /// This NPC summarized as a [`LeadInfo`] for other vehicles' controllers.
    pub fn lead_info(&self, road: &Road) -> LeadInfo {
        LeadInfo {
            x: self.vehicle.pose.position.x,
            lane: road.lane_index_at(self.vehicle.pose.position.x, self.vehicle.pose.position.y),
            speed: self.vehicle.speed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Pose;
    use crate::vehicle::VehicleParams;

    fn npc_at(road: &Road, lane: usize, x: f64, speed: f64) -> Npc {
        let pose = Pose::new(x, road.lane_center_y(lane), 0.0);
        Npc::new(
            Vehicle::new(VehicleParams::default(), pose, speed),
            lane,
            6.0,
        )
    }

    #[test]
    fn holds_lane_center_over_time() {
        let road = Road::default();
        let mut npc = npc_at(&road, 1, 0.0, 6.0);
        // Perturb laterally, then let the controller settle.
        npc.vehicle.pose.position.y += 0.8;
        for _ in 0..300 {
            let a = npc.control(&road, &[]);
            npc.vehicle.step(a, 0.1, 5);
        }
        let offset = npc.vehicle.pose.position.y - road.lane_center_y(1);
        assert!(offset.abs() < 0.15, "offset {offset} should settle near 0");
        assert!(npc.vehicle.pose.heading.abs() < 0.05);
    }

    #[test]
    fn regulates_to_reference_speed() {
        let road = Road::default();
        let mut npc = npc_at(&road, 0, 0.0, 2.0);
        for _ in 0..300 {
            let a = npc.control(&road, &[]);
            npc.vehicle.step(a, 0.1, 5);
        }
        assert!(
            (npc.vehicle.speed - 6.0).abs() < 0.5,
            "speed {}",
            npc.vehicle.speed
        );
    }

    #[test]
    fn slows_behind_lead_in_same_lane() {
        let road = Road::default();
        let mut npc = npc_at(&road, 1, 0.0, 6.0);
        let mut lead = LeadInfo {
            x: 10.0,
            lane: 1,
            speed: 2.0,
        };
        for _ in 0..300 {
            let a = npc.control(&road, &[lead]);
            npc.vehicle.step(a, 0.1, 5);
            lead.x += lead.speed * 0.1;
        }
        // The follower must have matched the slow lead without passing it.
        assert!(npc.vehicle.speed < 3.5, "speed {}", npc.vehicle.speed);
        assert!(
            npc.vehicle.pose.position.x < lead.x,
            "must not pass the lead"
        );
    }

    #[test]
    fn ignores_lead_in_other_lane() {
        let road = Road::default();
        let npc = npc_at(&road, 1, 0.0, 6.0);
        let other_lane = LeadInfo {
            x: 8.0,
            lane: 0,
            speed: 2.0,
        };
        let a = npc.control(&road, &[other_lane]);
        let a_free = npc.control(&road, &[]);
        assert_eq!(a, a_free);
    }

    #[test]
    fn ignores_vehicles_behind() {
        let road = Road::default();
        let npc = npc_at(&road, 1, 50.0, 6.0);
        let behind = LeadInfo {
            x: 40.0,
            lane: 1,
            speed: 20.0,
        };
        let a = npc.control(&road, &[behind]);
        let a_free = npc.control(&road, &[]);
        assert_eq!(a, a_free);
    }

    #[test]
    fn straight_road_never_merges() {
        let road = Road::default();
        let npc = npc_at(&road, 1, 1400.0, 6.0);
        assert_eq!(npc.active_lane(&road), 1);
    }

    #[test]
    fn ramp_npc_merges_into_lane_zero_before_deadline() {
        let road = Road::on_ramp(3, 3.5, 1500.0, 0.0, 250.0, 330.0);
        let mut npc = npc_at(&road, 3, 20.0, 8.0);
        assert_eq!(npc.active_lane(&road), 3, "far from the deadline");
        // Drive until past merge_start; the controller must have pulled the
        // NPC onto the mainline by then.
        while npc.vehicle.pose.position.x < 250.0 {
            let a = npc.control(&road, &[]);
            npc.vehicle.step(a, 0.1, 5);
        }
        assert_eq!(npc.active_lane(&road), 0);
        let offset = npc.vehicle.pose.position.y - road.lane_center_y(0);
        assert!(
            offset.abs() < 0.6,
            "should be in lane 0 at the deadline, offset {offset}"
        );
    }

    #[test]
    fn lane_drop_npc_merges_right() {
        let road = Road::lane_drop(3, 3.5, 1500.0, 300.0, 380.0);
        let mut npc = npc_at(&road, 2, 50.0, 8.0);
        assert_eq!(npc.active_lane(&road), 2);
        while npc.vehicle.pose.position.x < 300.0 {
            let a = npc.control(&road, &[]);
            npc.vehicle.step(a, 0.1, 5);
        }
        assert_eq!(npc.active_lane(&road), 1);
        let offset = npc.vehicle.pose.position.y - road.lane_center_y(1);
        assert!(offset.abs() < 0.6, "offset {offset}");
    }

    #[test]
    fn merging_npc_yields_to_alongside_traffic() {
        let road = Road::on_ramp(3, 3.5, 1500.0, 0.0, 250.0, 330.0);
        // Inside the merge window with a mainline car right alongside.
        let npc = npc_at(&road, 3, 220.0, 6.0);
        let blocker = LeadInfo {
            x: 221.0,
            lane: 0,
            speed: 6.0,
        };
        let a_yield = npc.control(&road, &[blocker]);
        let a_free = npc.control(&road, &[]);
        assert!(
            a_yield.thrust < a_free.thrust,
            "must brake to open a gap: {a_yield:?} vs {a_free:?}"
        );
    }

    /// Serial-path replica: the `others` slice `Npc::control` saw before
    /// the lead table existed (all vehicles in index order, ego last,
    /// minus the querying NPC).
    fn serial_others(road: &Road, npcs: &[Npc], ego: &Vehicle, own: usize) -> Vec<LeadInfo> {
        let mut leads: Vec<LeadInfo> = npcs.iter().map(|n| n.lead_info(road)).collect();
        leads.push(LeadInfo {
            x: ego.pose.position.x,
            lane: road.lane_index_at(ego.pose.position.x, ego.pose.position.y),
            speed: ego.speed,
        });
        leads
            .into_iter()
            .enumerate()
            .filter(|(j, _)| *j != own)
            .map(|(_, l)| l)
            .collect()
    }

    /// The table-based control path must reproduce the serial `others`
    /// scan bit-for-bit on every topology, including x-duplicate spawns
    /// (min_by tie-breaking) and mid-merge blocker queries.
    #[test]
    fn control_batched_is_bit_identical_to_serial_scan() {
        use crate::geometry::Pose;
        use crate::vehicle::VehicleParams;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let roads = [
            Road::default(),
            Road::on_ramp(3, 3.5, 1500.0, 0.0, 250.0, 330.0),
            Road::lane_drop(3, 3.5, 1500.0, 300.0, 380.0),
        ];
        let mut rng = StdRng::seed_from_u64(0x1EAD);
        for road in &roads {
            for _case in 0..200 {
                let n = rng.gen_range(1..=9);
                let npcs: Vec<Npc> = (0..n)
                    .map(|_| {
                        let lane = rng.gen_range(0..road.total_lanes());
                        // Snap half the spawns to a coarse grid so exact x
                        // duplicates (tie-break cases) actually occur.
                        let x = if rng.gen_bool(0.5) {
                            rng.gen_range(0..15) as f64 * 20.0
                        } else {
                            rng.gen_range(0.0..400.0)
                        };
                        let y = road.lane_center_y(lane) + rng.gen_range(-1.2..1.2);
                        let heading = rng.gen_range(-0.2..0.2);
                        let speed = rng.gen_range(0.0..14.0);
                        Npc::new(
                            Vehicle::new(VehicleParams::default(), Pose::new(x, y, heading), speed),
                            lane,
                            rng.gen_range(4.0..10.0),
                        )
                    })
                    .collect();
                let ego = Vehicle::new(
                    VehicleParams::default(),
                    Pose::new(
                        rng.gen_range(0.0..400.0),
                        road.lane_center_y(rng.gen_range(0..road.num_lanes)),
                        0.0,
                    ),
                    rng.gen_range(0.0..20.0),
                );
                let mut table = LeadTable::default();
                table.rebuild(road, &npcs, &ego);
                for (i, npc) in npcs.iter().enumerate() {
                    let others = serial_others(road, &npcs, &ego, i);
                    let serial = npc.control(road, &others);
                    let batched = npc.control_batched(&table, i);
                    assert_eq!(
                        serial.steer.to_bits(),
                        batched.steer.to_bits(),
                        "{} npc {i}: steer diverged",
                        road.topology.label()
                    );
                    assert_eq!(
                        serial.thrust.to_bits(),
                        batched.thrust.to_bits(),
                        "{} npc {i}: thrust diverged",
                        road.topology.label()
                    );
                }
            }
        }
    }

    /// Table rebuilds must reuse their buffers: steady-state rebuilds make
    /// no fresh allocations (capacities stabilize after the first pass).
    #[test]
    fn lead_table_rebuild_reuses_buffers() {
        let road = Road::default();
        let npcs: Vec<Npc> = (0..4)
            .map(|i| npc_at(&road, i % 3, i as f64 * 25.0, 6.0))
            .collect();
        let ego = Vehicle::new(
            crate::vehicle::VehicleParams::default(),
            crate::geometry::Pose::new(5.0, road.lane_center_y(1), 0.0),
            16.0,
        );
        let mut table = LeadTable::default();
        table.rebuild(&road, &npcs, &ego);
        let cap = table.entries.capacity();
        for _ in 0..10 {
            table.rebuild(&road, &npcs, &ego);
        }
        assert_eq!(table.entries.capacity(), cap);
        assert_eq!(table.entries.len(), npcs.len() + 1);
    }

    #[test]
    fn lead_info_reports_current_lane() {
        let road = Road::default();
        let mut npc = npc_at(&road, 2, 10.0, 6.0);
        let info = npc.lead_info(&road);
        assert_eq!(info.lane, 2);
        assert_eq!(info.x, 10.0);
        // Drift into lane 1 and the reported lane follows.
        npc.vehicle.pose.position.y = road.lane_center_y(1);
        assert_eq!(npc.lead_info(&road).lane, 1);
    }
}
