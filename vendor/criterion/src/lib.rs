//! Offline stand-in for `criterion` (the subset this workspace uses).
//!
//! Implements `Criterion::bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Timing is a simple
//! warmup-then-measure loop reporting median and mean wall-clock time per
//! iteration — adequate for the relative comparisons the repo's perf
//! benches make, without upstream criterion's statistical machinery or
//! plotting. Benches run with `cargo bench` exactly as before.
//!
//! Two extensions over upstream's interface that the workspace relies on:
//! results are kept on the [`Criterion`] instance ([`Criterion::results`])
//! so bench binaries can export them (e.g. as `BENCH_perf.json`), and
//! setting `CRITERION_QUICK=1` shrinks the warmup/measure budgets for CI
//! smoke runs where absolute precision does not matter.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Whether `CRITERION_QUICK` requests shortened measurement budgets.
fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Prevents the compiler from optimizing a benchmark value away.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Per-benchmark measurement driver handed to `bench_function` closures.
pub struct Bencher {
    /// Median ns/iter of the measured batches, filled in by [`Bencher::iter`].
    median_ns: f64,
    /// Mean ns/iter across all measured iterations.
    mean_ns: f64,
    /// Total iterations measured.
    iters: u64,
}

impl Bencher {
    /// Times the routine: brief warmup, then measured batches until a fixed
    /// time budget is spent.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let (warmup_ms, measure_ms) = if quick_mode() { (20, 80) } else { (200, 800) };
        // Warmup + calibration: find a batch size that takes ~1 ms.
        let warmup_deadline = Instant::now() + Duration::from_millis(warmup_ms);
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let dt = t0.elapsed();
            if Instant::now() >= warmup_deadline {
                break;
            }
            if dt < Duration::from_millis(1) && batch < 1 << 40 {
                batch = batch.saturating_mul(2);
            }
        }

        let mut samples_ns: Vec<f64> = Vec::new();
        let mut total_ns = 0.0;
        let mut total_iters: u64 = 0;
        let measure_deadline = Instant::now() + Duration::from_millis(measure_ms);
        while Instant::now() < measure_deadline || samples_ns.len() < 5 {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64;
            samples_ns.push(ns / batch as f64);
            total_ns += ns;
            total_iters += batch;
            if samples_ns.len() >= 200 {
                break;
            }
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples_ns[samples_ns.len() / 2];
        self.mean_ns = total_ns / total_iters as f64;
        self.iters = total_iters;
    }
}

/// Timing of one completed benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name as passed to `bench_function`.
    pub name: String,
    /// Median wall-clock time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Mean wall-clock time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

/// Top-level benchmark registry, mirroring criterion's entry point.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Runs one named benchmark and prints its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            median_ns: 0.0,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        println!(
            "{:<40} median {:>12}  mean {:>12}  ({} iters)",
            name,
            fmt_ns(b.median_ns),
            fmt_ns(b.mean_ns),
            b.iters
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            median_ns: b.median_ns,
            mean_ns: b.mean_ns,
            iters: b.iters,
        });
        self
    }

    /// All benchmark results recorded so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function invoking each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| {
            let mut acc = 0u64;
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            });
        });
        let results = c.results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "noop_add");
        assert!(results[0].iters > 0);
        assert!(results[0].mean_ns > 0.0);
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("µs"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
        assert!(fmt_ns(12_300_000_000.0).ends_with('s'));
    }
}
