//! Open-loop load generator for the threaded serving layer.
//!
//! The generator fires logical requests at a fixed wall-clock rate —
//! open-loop, so a slow server does not slow the arrival process down —
//! and hands each tick to a pool of client threads that grows on
//! backpressure: when a tick fires and every client is busy, a new client
//! is spawned (up to a cap) instead of the tick queueing behind in-flight
//! work. Clients retry backpressure sheds through
//! [`drive_core::retry`] with jittered exponential backoff, tally every
//! attempt, and the run ends with a three-way reconciliation: the
//! server's own counters, the summed per-attempt client tallies, and the
//! logical (post-retry) accounting must all balance.

use drive_core::retry::{self, Attempt, Exhausted, RetryPolicy};
use drive_metrics::histo::LatencyHistogram;
use drive_nn::gaussian::GaussianPolicy;
use drive_serve::config::ServeConfig;
use drive_serve::faults::FaultPlan;
use drive_serve::pipeline::STEER_FEATURE;
use drive_serve::report::ServeReport;
use drive_serve::request::{Counters, OutcomeKind};
use drive_serve::server::{Server, ServerHandle};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Load-generator shape: rate, volume, retry policy, and pool bounds.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Target logical request rate, requests per second.
    pub qps: u64,
    /// Total logical requests to fire.
    pub requests: u64,
    /// Seed for observation synthesis and retry jitter.
    pub seed: u64,
    /// Dimension of the synthesized observation frames (must exceed
    /// [`STEER_FEATURE`]).
    pub obs_dim: usize,
    /// Client retry policy for backpressure sheds.
    pub retry: RetryPolicy,
    /// Upper bound on the spawn-on-backpressure client pool.
    pub max_clients: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            qps: 500,
            requests: 200,
            seed: 42,
            obs_dim: 6,
            retry: RetryPolicy::attempts(3).with_backoff(
                Duration::from_micros(200),
                Duration::from_millis(2),
                0.5,
            ),
            max_clients: 32,
        }
    }
}

/// How a logical request (one tick, retries included) finally resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogicalStats {
    /// Answered by the full pipeline.
    pub served: u64,
    /// Answered by a degraded rung.
    pub degraded: u64,
    /// Expired in the queue (not retried — the answer window is gone).
    pub timed_out: u64,
    /// Still shed after every retry attempt.
    pub gave_up: u64,
}

impl LogicalStats {
    /// Requests that got an actuation back.
    pub fn answered(&self) -> u64 {
        self.served + self.degraded
    }

    /// All logical resolutions.
    pub fn total(&self) -> u64 {
        self.served + self.degraded + self.timed_out + self.gave_up
    }
}

/// Everything one load-generator run produces.
#[derive(Debug)]
pub struct LoadgenReport {
    /// The server's own end-of-run report (reconciled at drain).
    pub server: ServeReport,
    /// Per-attempt client tallies, summed — must equal the server's
    /// counters field for field.
    pub client_attempts: Counters,
    /// Client-observed enqueue-to-answer latency, µs.
    pub client_latency: LatencyHistogram,
    /// Logical (post-retry) request accounting.
    pub logical: LogicalStats,
    /// Attempts beyond the first, across all logical requests.
    pub retried_attempts: u64,
    /// Clients the pool grew to under backpressure.
    pub clients_spawned: usize,
    /// Wall-clock span from first tick to last resolution, µs.
    pub wall_us: u64,
}

impl LoadgenReport {
    /// Achieved logical request rate over the run's wall clock.
    pub fn achieved_qps(&self) -> u64 {
        if self.wall_us == 0 {
            return 0;
        }
        self.logical.total() * 1_000_000 / self.wall_us
    }

    /// Cross-checks the three ledgers: the server reconciles internally,
    /// the summed per-attempt client tallies equal the server's counters,
    /// and every logical request resolved exactly once.
    ///
    /// # Errors
    ///
    /// Describes the first imbalance found.
    pub fn reconcile(&self, expected_requests: u64) -> Result<(), String> {
        self.server.counters.reconcile()?;
        if self.client_attempts != self.server.counters {
            return Err(format!(
                "client attempt tallies diverge from server counters\n  clients: {}\n  server:  {}",
                self.client_attempts, self.server.counters
            ));
        }
        if self.logical.total() != expected_requests {
            return Err(format!(
                "logical accounting broken: {} resolutions for {} requests",
                self.logical.total(),
                expected_requests
            ));
        }
        Ok(())
    }

    /// Human-readable multi-line summary (wall-clock numbers included, so
    /// not byte-stable across runs — use the simulator for that).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "loadgen: logical served={} degraded={} timed_out={} gave_up={} \
             retried_attempts={} clients={} achieved_qps={}\n",
            self.logical.served,
            self.logical.degraded,
            self.logical.timed_out,
            self.logical.gave_up,
            self.retried_attempts,
            self.clients_spawned,
            self.achieved_qps(),
        ));
        out.push_str(&format!("client latency_us: {}\n", self.client_latency));
        out.push_str(&self.server.render());
        out
    }
}

/// Synthesizes a deterministic observation frame for tick `i`: small
/// seeded noise everywhere, a near-zero steering readback at
/// [`STEER_FEATURE`] so clean runs keep the detector quiet.
pub fn synth_obs(seed: u64, i: u64, obs_dim: usize) -> Vec<f32> {
    (0..obs_dim as u64)
        .map(|j| {
            let x = drive_seed::splitmix64(seed.wrapping_add(i * obs_dim as u64 + j));
            let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
            if j == STEER_FEATURE as u64 {
                ((unit - 0.5) * 0.02) as f32
            } else {
                ((unit - 0.5) * 0.8) as f32
            }
        })
        .collect()
}

/// What one client thread accumulated.
#[derive(Debug, Default)]
struct ClientLedger {
    attempts: Counters,
    latency: LatencyHistogram,
    logical: LogicalStats,
    retried: u64,
}

/// One logical request: attempts through the retry policy, tallying every
/// attempt, until an answer/timeout or the policy is exhausted.
fn drive_ticket(
    handle: &ServerHandle,
    ledger: &mut ClientLedger,
    policy: &RetryPolicy,
    seed: u64,
    ticket: u64,
    obs_dim: usize,
) {
    let result = retry::run(policy, seed.wrapping_add(ticket), |attempt| {
        if attempt > 0 {
            ledger.retried += 1;
        }
        ledger.attempts.submitted += 1;
        let outcome = handle.request(synth_obs(seed, ticket, obs_dim));
        ledger.attempts.record(&outcome);
        if let Some(latency) = outcome.latency_us() {
            ledger.latency.record(latency);
        }
        match outcome.kind() {
            // Backpressure is retryable; anything else is final. A timeout
            // is not retried: the response window the caller cared about
            // is already gone.
            OutcomeKind::Shed => Err(outcome),
            _ => Ok(outcome),
        }
    });
    match result {
        Ok(Attempt { value, .. }) => match value.kind() {
            OutcomeKind::Served => ledger.logical.served += 1,
            OutcomeKind::Degraded => ledger.logical.degraded += 1,
            OutcomeKind::TimedOut => ledger.logical.timed_out += 1,
            OutcomeKind::Shed => unreachable!("sheds are retried or exhausted"),
        },
        Err(Exhausted { .. }) => ledger.logical.gave_up += 1,
    }
}

/// Spawns one client thread draining tickets until the channel closes.
fn spawn_client(
    rx: Arc<Mutex<Receiver<u64>>>,
    handle: ServerHandle,
    idle: Arc<AtomicUsize>,
    config: LoadgenConfig,
) -> JoinHandle<ClientLedger> {
    std::thread::spawn(move || {
        let mut ledger = ClientLedger::default();
        loop {
            idle.fetch_add(1, Ordering::SeqCst);
            // Hold the receiver lock only for the blocking take, so other
            // idle clients can wait alongside.
            let ticket = {
                let guard = rx.lock().expect("ticket receiver");
                guard.recv()
            };
            idle.fetch_sub(1, Ordering::SeqCst);
            let Ok(ticket) = ticket else { break };
            drive_ticket(
                &handle,
                &mut ledger,
                &config.retry,
                config.seed,
                ticket,
                config.obs_dim,
            );
        }
        ledger
    })
}

/// Runs the open-loop generator against a freshly started threaded server
/// and returns the merged, reconcilable report.
///
/// # Panics
///
/// Panics on an invalid [`ServeConfig`], a `qps` of zero, or an `obs_dim`
/// without the steering-readback feature.
pub fn run_loadgen(
    policy: Arc<GaussianPolicy>,
    serve: ServeConfig,
    plan: FaultPlan,
    config: &LoadgenConfig,
) -> LoadgenReport {
    assert!(config.qps > 0, "loadgen qps must be positive");
    assert!(
        config.obs_dim > STEER_FEATURE && config.obs_dim == policy.obs_dim(),
        "loadgen obs_dim must match the policy and carry the steer feature"
    );
    assert!(
        config.max_clients >= 1,
        "the pool needs at least one client"
    );
    let server = Server::start(policy, serve, plan);

    let (tx, rx): (Sender<u64>, Receiver<u64>) = channel();
    let rx = Arc::new(Mutex::new(rx));
    let idle = Arc::new(AtomicUsize::new(0));
    let mut clients = vec![spawn_client(
        rx.clone(),
        server.handle(),
        idle.clone(),
        config.clone(),
    )];

    // Open-loop firing: tick i is due at `epoch + i * gap` regardless of
    // how the server is keeping up.
    let gap = Duration::from_micros(1_000_000 / config.qps.max(1));
    let epoch = Instant::now();
    for i in 0..config.requests {
        let due = epoch + gap * i as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        // Spawn-on-backpressure: every client busy means this tick would
        // queue behind in-flight work — grow the pool instead, up to the
        // cap (past it, ticks queue; the server sheds if they pile up).
        if idle.load(Ordering::SeqCst) == 0 && clients.len() < config.max_clients {
            clients.push(spawn_client(
                rx.clone(),
                server.handle(),
                idle.clone(),
                config.clone(),
            ));
        }
        tx.send(i).expect("a client pool outlives the dispatcher");
    }
    drop(tx); // closes the channel: clients drain and exit

    let clients_spawned = clients.len();
    let mut client_attempts = Counters::default();
    let mut client_latency = LatencyHistogram::new();
    let mut logical = LogicalStats::default();
    let mut retried_attempts = 0;
    for client in clients {
        let ledger = client.join().expect("client thread");
        client_attempts.merge(&ledger.attempts);
        client_latency.merge(&ledger.latency);
        logical.served += ledger.logical.served;
        logical.degraded += ledger.logical.degraded;
        logical.timed_out += ledger.logical.timed_out;
        logical.gave_up += ledger.logical.gave_up;
        retried_attempts += ledger.retried;
    }
    let wall_us = epoch.elapsed().as_micros() as u64;

    LoadgenReport {
        server: server.shutdown(),
        client_attempts,
        client_latency,
        logical,
        retried_attempts,
        clients_spawned,
        wall_us,
    }
}

/// Sweeps candidate rates (ascending) against real servers and returns the
/// highest one meeting the SLO: client p99 within `slo_p99_us`, nothing
/// given up, nothing timed out. Wall-clock, so indicative rather than
/// reproducible — the deterministic twin is
/// [`drive_serve::sim::max_qps_at_slo`].
pub fn find_max_qps(
    policy: &Arc<GaussianPolicy>,
    serve: &ServeConfig,
    base: &LoadgenConfig,
    slo_p99_us: u64,
    candidates: &[u64],
) -> Option<u64> {
    let mut best = None;
    for &qps in candidates {
        let config = LoadgenConfig {
            qps,
            ..base.clone()
        };
        let plan = FaultPlan::none(serve.workers);
        let report = run_loadgen(policy.clone(), serve.clone(), plan, &config);
        if report.reconcile(config.requests).is_ok()
            && report.client_latency.p99() <= slo_p99_us
            && report.logical.gave_up == 0
            && report.logical.timed_out == 0
            && best.is_none_or(|b| qps > b)
        {
            best = Some(qps);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_serve::faults::FaultPlanConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn policy(obs_dim: usize) -> Arc<GaussianPolicy> {
        let mut rng = StdRng::seed_from_u64(23);
        Arc::new(GaussianPolicy::new(obs_dim, &[16], 2, &mut rng))
    }

    #[test]
    fn light_load_reconciles_and_answers_everything() {
        let config = LoadgenConfig {
            qps: 2_000,
            requests: 100,
            ..LoadgenConfig::default()
        };
        let serve = ServeConfig::default();
        let report = run_loadgen(
            policy(config.obs_dim),
            serve.clone(),
            FaultPlan::none(serve.workers),
            &config,
        );
        report.reconcile(config.requests).expect("books balance");
        assert_eq!(
            report.logical.answered(),
            config.requests,
            "{}",
            report.render()
        );
        assert_eq!(report.logical.gave_up, 0);
        assert!(report.client_latency.count() > 0);
    }

    #[test]
    fn backpressure_grows_the_pool_and_retries_are_counted() {
        // A tiny queue and a single slow-ish worker under a hot rate: the
        // pool must grow past one client, and any sheds must be retried
        // and still reconcile across all three ledgers.
        let serve = ServeConfig {
            workers: 1,
            queue_capacity: 4,
            max_batch: 2,
            batch_window_us: 2_000,
            deadline_us: 30_000,
            ..ServeConfig::default()
        };
        let config = LoadgenConfig {
            qps: 20_000,
            requests: 300,
            max_clients: 16,
            ..LoadgenConfig::default()
        };
        let report = run_loadgen(
            policy(config.obs_dim),
            serve.clone(),
            FaultPlan::none(serve.workers),
            &config,
        );
        report.reconcile(config.requests).expect("books balance");
        assert!(
            report.clients_spawned > 1,
            "a saturating open-loop rate must grow the pool: {}",
            report.render()
        );
        // Retry accounting: total attempts = logical requests + retries.
        assert_eq!(
            report.client_attempts.submitted,
            config.requests + report.retried_attempts,
            "{}",
            report.render()
        );
    }

    #[test]
    fn faults_do_not_break_the_books() {
        let serve = ServeConfig {
            workers: 2,
            queue_capacity: 16,
            max_batch: 4,
            batch_window_us: 1_000,
            deadline_us: 30_000,
            ..ServeConfig::default()
        };
        let plan = FaultPlan::seeded(
            9,
            serve.workers,
            200_000,
            &FaultPlanConfig {
                kills: 1,
                stalls: 1,
                stall_us: 10_000,
                corrupt_rate: 0.1,
            },
        );
        let config = LoadgenConfig {
            qps: 4_000,
            requests: 200,
            ..LoadgenConfig::default()
        };
        let report = run_loadgen(policy(config.obs_dim), serve, plan, &config);
        report.reconcile(config.requests).expect("books balance");
        assert!(
            report.logical.answered() > 0,
            "the service keeps answering through faults: {}",
            report.render()
        );
    }

    #[test]
    fn synth_obs_is_deterministic_and_shaped() {
        let a = synth_obs(42, 7, 6);
        let b = synth_obs(42, 7, 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(
            a[STEER_FEATURE].abs() <= 0.01,
            "steer readback stays near zero"
        );
        assert_ne!(synth_obs(43, 7, 6), a, "seed matters");
    }

    #[test]
    fn qps_sweep_accepts_a_gentle_rate() {
        let base = LoadgenConfig {
            requests: 40,
            ..LoadgenConfig::default()
        };
        let serve = ServeConfig::default();
        let best = find_max_qps(&policy(base.obs_dim), &serve, &base, 2_000_000, &[200]);
        assert_eq!(best, Some(200));
    }
}
