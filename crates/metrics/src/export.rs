//! CSV export of experiment data (for plotting outside the terminal).
//!
//! Two writers with different durability trade-offs: [`Csv`] accumulates in
//! memory and writes atomically at the end (a killed run leaves the previous
//! complete file), while [`CsvSink`] appends and flushes one row at a time
//! (a killed run leaves every row completed so far — the progress-log shape
//! used by the crash-safe bench journal).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A minimal CSV builder with RFC-4180-style quoting.
#[derive(Debug, Clone, Default)]
pub struct Csv {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

fn escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

impl Csv {
    /// Creates a CSV with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Csv {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the headers.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells, expected {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the CSV has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes to CSV text.
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV to a file, creating parent directories.
    ///
    /// The write is atomic (a sibling temp file renamed into place,
    /// matching the checkpoint convention), so a run killed mid-write
    /// never leaves a truncated results file — readers see either the old
    /// complete CSV or the new one.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors. A failed write removes the temp file on a
    /// best-effort basis.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file_name = path.file_name().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("CSV path has no file name: {}", path.display()),
            )
        })?;
        let tmp = path.with_file_name(format!("{}.tmp", file_name.to_string_lossy()));
        if let Err(e) = std::fs::write(&tmp, self.to_csv_string()) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::rename(&tmp, path)
    }
}

/// A line-buffered CSV writer that flushes after every row.
///
/// Unlike [`Csv`], rows hit the file immediately, so a process killed at an
/// arbitrary point leaves a valid partial CSV: the header plus every fully
/// written row. The newline is part of the same buffered write as the row,
/// so a torn final line can only occur if the OS itself crashes mid-write.
#[derive(Debug)]
pub struct CsvSink {
    file: std::fs::File,
    columns: usize,
}

impl CsvSink {
    fn write_line(file: &mut std::fs::File, cells: &[String]) -> std::io::Result<()> {
        let line = format!(
            "{}\n",
            cells
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        file.write_all(line.as_bytes())?;
        file.flush()
    }

    /// Creates (or truncates) `path`, writes the header line, and flushes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating parent directories or the file.
    pub fn create<S: Into<String>, I: IntoIterator<Item = S>>(
        path: impl AsRef<Path>,
        headers: I,
    ) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let mut file = std::fs::File::create(path)?;
        Self::write_line(&mut file, &headers)?;
        Ok(CsvSink {
            file,
            columns: headers.len(),
        })
    }

    /// Opens `path` for appending if it already exists (a resumed run keeps
    /// its earlier rows), or creates it with the header line otherwise.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append_or_create<S: Into<String>, I: IntoIterator<Item = S>>(
        path: impl AsRef<Path>,
        headers: I,
    ) -> std::io::Result<Self> {
        let path = path.as_ref();
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        if path.exists() {
            let file = std::fs::OpenOptions::new().append(true).open(path)?;
            return Ok(CsvSink {
                file,
                columns: headers.len(),
            });
        }
        Self::create(path, headers)
    }

    /// Appends one row and flushes it to the file immediately.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(
        &mut self,
        cells: I,
    ) -> std::io::Result<()> {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns,
            "row has {} cells, expected {}",
            row.len(),
            self.columns
        );
        Self::write_line(&mut self.file, &row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_rows() {
        let mut c = Csv::new(["a", "b"]);
        c.row(["1", "2"]).row(["x", "y"]);
        let s = c.to_csv_string();
        assert_eq!(s, "a,b\n1,2\nx,y\n");
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn quotes_special_cells() {
        let mut c = Csv::new(["label"]);
        c.row(["has,comma"]).row(["has\"quote"]);
        let s = c.to_csv_string();
        assert!(s.contains("\"has,comma\""));
        assert!(s.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn wrong_arity_panics() {
        let mut c = Csv::new(["a", "b"]);
        c.row(["only-one"]);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("drive-metrics-csv-test");
        let path = dir.join("t.csv");
        let mut c = Csv::new(["v"]);
        c.row(["1"]);
        c.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "v\n1\n");
        // Atomic write: no temp file left behind, and overwriting an
        // existing CSV replaces it completely.
        assert!(!dir.join("t.csv.tmp").exists());
        let mut c2 = Csv::new(["v"]);
        c2.row(["2"]);
        c2.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "v\n2\n");
        assert!(!dir.join("t.csv.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_to_rejects_pathless_target() {
        let c = Csv::new(["v"]);
        assert!(c.write_to("/").is_err());
    }

    #[test]
    fn sink_flushes_each_row_and_resumes_appending() {
        let dir = std::env::temp_dir().join("drive-metrics-sink-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("progress.csv");
        let mut sink = CsvSink::create(&path, ["step", "label"]).unwrap();
        sink.row(["1", "plain"]).unwrap();
        sink.row(["2", "has,comma"]).unwrap();
        // Rows are on disk while the sink is still open (flush-per-row),
        // exactly what a concurrent reader of a killed run would see.
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "step,label\n1,plain\n2,\"has,comma\"\n"
        );
        drop(sink);
        // Re-opening appends after the existing rows instead of truncating.
        let mut resumed = CsvSink::append_or_create(&path, ["step", "label"]).unwrap();
        resumed.row(["3", "after-resume"]).unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "step,label\n1,plain\n2,\"has,comma\"\n3,after-resume\n"
        );
        // A fresh `create` truncates back to just the header.
        let sink = CsvSink::create(&path, ["step", "label"]).unwrap();
        drop(sink);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "step,label\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn sink_wrong_arity_panics() {
        let dir = std::env::temp_dir().join("drive-metrics-sink-arity-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut sink = CsvSink::create(dir.join("p.csv"), ["a", "b"]).unwrap();
        let _ = sink.row(["only-one"]);
    }
}
