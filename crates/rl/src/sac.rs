//! Soft actor-critic (Haarnoja et al., 2018) with twin critics, Polyak
//! target networks, and automatic entropy-temperature tuning.
//!
//! This is the algorithm the paper uses for **both** sides of the game: the
//! end-to-end driving agent (Section III-C) and the adversarial attack
//! policies (Section IV).

use crate::actor::{Actor, ActorSample};
use crate::replay::{Batch, ReplayBuffer};
use drive_nn::activation::Activation;
use drive_nn::adam::Adam;
use drive_nn::checkpoint::{self, CheckpointError, Reader};
use drive_nn::gaussian::GaussianPolicy;
use drive_nn::mat::Mat;
use drive_nn::mlp::{Mlp, MlpCache};
use drive_nn::scratch::{SampleBackScratch, Scratch};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// SAC hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SacConfig {
    /// Discount factor.
    pub gamma: f32,
    /// Polyak averaging rate for target networks.
    pub tau: f32,
    /// Actor learning rate.
    pub actor_lr: f32,
    /// Critic learning rate.
    pub critic_lr: f32,
    /// Entropy-temperature learning rate.
    pub alpha_lr: f32,
    /// Initial entropy temperature.
    pub init_alpha: f32,
    /// Target policy entropy; `None` defaults to `-action_dim`.
    pub target_entropy: Option<f32>,
    /// Mini-batch size per update.
    pub batch_size: usize,
    /// Number of updates during which only the critics train (actor and
    /// temperature frozen). A critic warm-up protects a pre-trained actor
    /// (behaviour-cloned victim, fine-tuned defense) from being wrecked by
    /// the gradients of freshly initialized critics.
    pub actor_delay: usize,
}

impl Default for SacConfig {
    fn default() -> Self {
        SacConfig {
            gamma: 0.99,
            tau: 0.005,
            actor_lr: 3e-4,
            critic_lr: 3e-4,
            alpha_lr: 3e-4,
            init_alpha: 0.1,
            target_entropy: None,
            batch_size: 128,
            actor_delay: 0,
        }
    }
}

/// Diagnostic losses from one SAC update.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SacLosses {
    /// Mean squared Bellman error of critic 1.
    pub q1_loss: f32,
    /// Mean squared Bellman error of critic 2.
    pub q2_loss: f32,
    /// Actor objective `E[alpha log pi - min Q]`.
    pub actor_loss: f32,
    /// Current entropy temperature.
    pub alpha: f32,
    /// Mean policy entropy estimate (`-log pi`).
    pub entropy: f32,
}

/// Persistent workspace for [`Sac::update_batch`] — every buffer the
/// update needs, warmed up on the first call and reused afterwards so the
/// hot training loop performs zero heap allocations. Pure workspace:
/// carries no learned state, so cloning a learner clones only capacity.
#[derive(Debug, Clone)]
struct UpdateScratch<S> {
    /// Policy sample at `next_obs` (critic targets).
    next_sample: Option<S>,
    /// Policy sample at `obs` (actor objective).
    pi_sample: Option<S>,
    next_in: Mat,
    critic_in: Mat,
    actor_in: Mat,
    targets: Vec<f32>,
    tgt1: Scratch,
    tgt2: Scratch,
    c1: MlpCache,
    c2: MlpCache,
    a1: MlpCache,
    a2: MlpCache,
    g1: Mat,
    g2: Mat,
    pick1: Mat,
    pick2: Mat,
    grad_action: Mat,
    grad_logp: Vec<f32>,
    bw1: Scratch,
    bw2: Scratch,
    actor_bw: SampleBackScratch,
}

// Manual impl: `derive(Default)` would demand `S: Default`, which actor
// sample caches don't all provide (the `Option` slots default to `None`
// regardless).
impl<S> Default for UpdateScratch<S> {
    fn default() -> Self {
        UpdateScratch {
            next_sample: None,
            pi_sample: None,
            next_in: Mat::default(),
            critic_in: Mat::default(),
            actor_in: Mat::default(),
            targets: Vec::new(),
            tgt1: Scratch::default(),
            tgt2: Scratch::default(),
            c1: MlpCache::default(),
            c2: MlpCache::default(),
            a1: MlpCache::default(),
            a2: MlpCache::default(),
            g1: Mat::default(),
            g2: Mat::default(),
            pick1: Mat::default(),
            pick2: Mat::default(),
            grad_action: Mat::default(),
            grad_logp: Vec::new(),
            bw1: Scratch::default(),
            bw2: Scratch::default(),
            actor_bw: SampleBackScratch::default(),
        }
    }
}

/// A soft actor-critic learner, generic over the actor architecture
/// (plain Gaussian policy or progressive network).
#[derive(Debug, Clone)]
pub struct Sac<A: Actor = GaussianPolicy> {
    /// The stochastic policy being learned.
    pub actor: A,
    q1: Mlp,
    q2: Mlp,
    q1_target: Mlp,
    q2_target: Mlp,
    opt_actor: Adam,
    opt_q1: Adam,
    opt_q2: Adam,
    opt_alpha: Adam,
    log_alpha: Vec<f32>,
    target_entropy: f32,
    config: SacConfig,
    obs_dim: usize,
    action_dim: usize,
    updates: usize,
    /// Reusable mini-batch buffers for [`Sac::update`] — pure workspace,
    /// carries no learned state.
    batch_scratch: Batch,
    /// Reusable buffers for [`Sac::update_batch`] — pure workspace.
    update_scratch: UpdateScratch<A::Sample>,
}

/// Version tag of the SAC learner checkpoint section.
const SAC_STATE_VERSION: &str = "v1";

impl Sac<GaussianPolicy> {
    /// Creates a learner with fresh actor/critic networks using the given
    /// hidden sizes.
    pub fn new(
        obs_dim: usize,
        action_dim: usize,
        hidden: &[usize],
        config: SacConfig,
        rng: &mut StdRng,
    ) -> Self {
        let actor = GaussianPolicy::new(obs_dim, hidden, action_dim, rng);
        Self::with_actor(actor, hidden, config, rng)
    }

    /// Appends the learner's full state — actor, both critics and targets,
    /// all four optimizers, the entropy temperature, and the update counter
    /// — as a versioned checkpoint section. The scratch workspaces carry no
    /// learned state and are rebuilt lazily, so a decoded learner continues
    /// training bit-exactly.
    pub fn encode_state_into(&self, buf: &mut String) {
        buf.push_str(&format!(
            "sac-state {SAC_STATE_VERSION} {} {} {}\n",
            self.updates, self.target_entropy, self.log_alpha[0]
        ));
        checkpoint::encode_policy_into(buf, &self.actor);
        checkpoint::encode_mlp_into(buf, &self.q1);
        checkpoint::encode_mlp_into(buf, &self.q2);
        checkpoint::encode_mlp_into(buf, &self.q1_target);
        checkpoint::encode_mlp_into(buf, &self.q2_target);
        checkpoint::encode_adam_into(buf, &self.opt_actor);
        checkpoint::encode_adam_into(buf, &self.opt_q1);
        checkpoint::encode_adam_into(buf, &self.opt_q2);
        checkpoint::encode_adam_into(buf, &self.opt_alpha);
    }

    /// Parses one learner section from a reader positioned at its
    /// `sac-state` tag. Hyper-parameters are not serialized; the caller
    /// supplies the same `config` the original run used (snapshot formats
    /// pin it with a config hash).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Version`] for a section written by a
    /// different format revision, [`CheckpointError::Parse`] on structural
    /// mismatch.
    pub fn decode_state_from(
        r: &mut Reader<'_>,
        config: SacConfig,
    ) -> Result<Self, CheckpointError> {
        let parse_err = CheckpointError::Parse;
        let args = r.expect_tag("sac-state")?;
        let version = *args
            .first()
            .ok_or_else(|| parse_err("sac-state tag needs a version".into()))?;
        if version != SAC_STATE_VERSION {
            return Err(CheckpointError::Version {
                found: version.to_string(),
                expected: SAC_STATE_VERSION,
            });
        }
        if args.len() != 4 {
            return Err(parse_err(
                "sac-state tag needs '<version> <updates> <target_entropy> <log_alpha>'".into(),
            ));
        }
        let updates: usize = args[1]
            .parse()
            .map_err(|_| parse_err(format!("bad update count '{}'", args[1])))?;
        let target_entropy: f32 = args[2]
            .parse()
            .map_err(|_| parse_err(format!("bad target entropy '{}'", args[2])))?;
        let log_alpha: f32 = args[3]
            .parse()
            .map_err(|_| parse_err(format!("bad log alpha '{}'", args[3])))?;
        let actor = checkpoint::decode_policy_from(r)?;
        let q1 = checkpoint::decode_mlp_from(r)?;
        let q2 = checkpoint::decode_mlp_from(r)?;
        let q1_target = checkpoint::decode_mlp_from(r)?;
        let q2_target = checkpoint::decode_mlp_from(r)?;
        let opt_actor = checkpoint::decode_adam_from(r)?;
        let opt_q1 = checkpoint::decode_adam_from(r)?;
        let opt_q2 = checkpoint::decode_adam_from(r)?;
        let opt_alpha = checkpoint::decode_adam_from(r)?;
        let obs_dim = actor.obs_dim();
        let action_dim = actor.action_dim();
        if q1.in_dim() != obs_dim + action_dim {
            return Err(parse_err(format!(
                "critic input {} does not match obs {obs_dim} + action {action_dim}",
                q1.in_dim()
            )));
        }
        Ok(Sac {
            actor,
            q1,
            q2,
            q1_target,
            q2_target,
            opt_actor,
            opt_q1,
            opt_q2,
            opt_alpha,
            log_alpha: vec![log_alpha],
            target_entropy,
            config,
            obs_dim,
            action_dim,
            updates,
            batch_scratch: Batch::default(),
            update_scratch: UpdateScratch::default(),
        })
    }
}

impl<A: Actor> Sac<A> {
    /// Creates a learner around an existing (e.g. behaviour-cloned or
    /// progressive) actor.
    pub fn with_actor(
        actor: A,
        critic_hidden: &[usize],
        config: SacConfig,
        rng: &mut StdRng,
    ) -> Self {
        let obs_dim = actor.obs_dim();
        let action_dim = actor.action_dim();
        let mut sizes = Vec::with_capacity(critic_hidden.len() + 2);
        sizes.push(obs_dim + action_dim);
        sizes.extend_from_slice(critic_hidden);
        sizes.push(1);
        let q1 = Mlp::new(&sizes, Activation::Relu, Activation::Identity, rng);
        let q2 = Mlp::new(&sizes, Activation::Relu, Activation::Identity, rng);
        let q1_target = q1.clone();
        let q2_target = q2.clone();
        let target_entropy = config.target_entropy.unwrap_or(-(action_dim as f32));
        Sac {
            actor,
            q1,
            q2,
            q1_target,
            q2_target,
            opt_actor: Adam::with_lr(config.actor_lr),
            opt_q1: Adam::with_lr(config.critic_lr),
            opt_q2: Adam::with_lr(config.critic_lr),
            opt_alpha: Adam::with_lr(config.alpha_lr),
            log_alpha: vec![config.init_alpha.max(1e-6).ln()],
            target_entropy,
            config,
            obs_dim,
            action_dim,
            updates: 0,
            batch_scratch: Batch::default(),
            update_scratch: UpdateScratch::default(),
        }
    }

    /// Current entropy temperature.
    pub fn alpha(&self) -> f32 {
        self.log_alpha[0].exp()
    }

    /// The configuration in use.
    pub fn config(&self) -> &SacConfig {
        &self.config
    }

    /// Observation dimensionality.
    pub fn obs_dim(&self) -> usize {
        self.obs_dim
    }

    /// Action dimensionality.
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// Q-value of critic 1 for a single `(obs, action)` pair — exposed for
    /// diagnostics and tests.
    pub fn q1_value(&self, obs: &[f32], action: &[f32]) -> f32 {
        let x = Mat::from_row(obs).hcat(&Mat::from_row(action));
        self.q1.forward(&x).get(0, 0)
    }

    /// Acts on a single observation (stochastic unless `deterministic`).
    pub fn act(&self, obs: &[f32], rng: &mut StdRng, deterministic: bool) -> Vec<f32> {
        self.actor.act(obs, rng, deterministic)
    }

    /// Performs one gradient update from a replay sample.
    ///
    /// # Panics
    ///
    /// Panics if the buffer shapes do not match the learner or the buffer is
    /// empty.
    pub fn update(&mut self, buffer: &ReplayBuffer, rng: &mut StdRng) -> SacLosses {
        // Move the reusable batch out so `update_batch` can borrow `self`;
        // its buffers warm up once and are then reused every update.
        let mut batch = std::mem::take(&mut self.batch_scratch);
        buffer.sample_into(self.config.batch_size, rng, &mut batch);
        let losses = self.update_batch(&batch, rng);
        self.batch_scratch = batch;
        losses
    }

    /// Number of gradient updates performed.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Performs one gradient update on a pre-sampled batch.
    ///
    /// Every intermediate lives in a persistent [`UpdateScratch`], so after
    /// the first call at a given batch size this performs zero heap
    /// allocations (see `crates/rl/tests/alloc.rs`).
    pub fn update_batch(&mut self, batch: &Batch, rng: &mut StdRng) -> SacLosses {
        self.updates += 1;
        crate::perf::record_updates(1);
        let actor_frozen = self.updates <= self.config.actor_delay;
        let n = batch.len();
        let nf = n as f32;
        let alpha = self.alpha();
        let gamma = self.config.gamma;

        // Move the workspace out so its buffers can be borrowed alongside
        // `self`'s networks; restored before returning.
        let mut us = std::mem::take(&mut self.update_scratch);
        let UpdateScratch {
            next_sample,
            pi_sample,
            next_in,
            critic_in,
            actor_in,
            targets,
            tgt1,
            tgt2,
            c1,
            c2,
            a1,
            a2,
            g1,
            g2,
            pick1,
            pick2,
            grad_action,
            grad_logp,
            bw1,
            bw2,
            actor_bw,
        } = &mut us;

        // ------- Critic update -------
        // Target actions and values from the *current* policy at next_obs.
        self.actor.sample_into(&batch.next_obs, rng, next_sample);
        let next = next_sample.as_ref().expect("sample_into fills the slot");
        batch.next_obs.hcat_into(next.actions(), next_in);
        let q1t = self.q1_target.forward_with(next_in, tgt1);
        let q2t = self.q2_target.forward_with(next_in, tgt2);
        // Fused target pass: min-Q, entropy bonus, and Bellman backup in
        // one sweep over the (n, 1) output columns.
        targets.clear();
        targets.extend(
            q1t.data()
                .iter()
                .zip(q2t.data())
                .zip(next.log_prob())
                .zip(&batch.rewards)
                .zip(&batch.terminals)
                .map(|((((&v1, &v2), &lp), &r), &t)| {
                    let soft = v1.min(v2) - alpha * lp;
                    r + gamma * (1.0 - t) * soft
                }),
        );

        batch.obs.hcat_into(&batch.actions, critic_in);
        self.q1.forward_cached_into(critic_in, c1);
        self.q2.forward_cached_into(critic_in, c2);
        g1.resize(n, 1);
        g2.resize(n, 1);
        let mut q1_loss = 0.0;
        let mut q2_loss = 0.0;
        // Fused TD-error pass: losses and both critic gradients together.
        for ((((&o1, &o2), gg1), gg2), &t) in c1
            .output()
            .data()
            .iter()
            .zip(c2.output().data())
            .zip(g1.data_mut())
            .zip(g2.data_mut())
            .zip(&*targets)
        {
            let e1 = o1 - t;
            let e2 = o2 - t;
            q1_loss += e1 * e1 / nf;
            q2_loss += e2 * e2 / nf;
            *gg1 = 2.0 * e1 / nf;
            *gg2 = 2.0 * e2 / nf;
        }
        self.q1.zero_grad();
        self.q2.zero_grad();
        self.q1.backward_with(c1, g1, bw1);
        self.q2.backward_with(c2, g2, bw2);
        self.opt_q1.step(|f| self.q1.visit_params(f));
        self.opt_q2.step(|f| self.q2.visit_params(f));

        // ------- Actor update -------
        // a ~ pi(s) with reparameterization; loss = E[alpha logp - min Q].
        // During the critic warm-up (actor_delay) only diagnostics are
        // computed; actor and temperature stay frozen.
        self.actor.sample_into(&batch.obs, rng, pi_sample);
        let pi = pi_sample.as_ref().expect("sample_into fills the slot");
        batch.obs.hcat_into(pi.actions(), actor_in);
        self.q1.forward_cached_into(actor_in, a1);
        self.q2.forward_cached_into(actor_in, a2);
        // Per-sample, gradient flows through the smaller critic
        // (dL/dq = -1/n through the selected one); fused with the loss.
        pick1.resize(n, 1);
        pick1.fill(0.0);
        pick2.resize(n, 1);
        pick2.fill(0.0);
        let mut actor_loss = 0.0;
        for ((((&v1, &v2), p1), p2), &lp) in a1
            .output()
            .data()
            .iter()
            .zip(a2.output().data())
            .zip(pick1.data_mut())
            .zip(pick2.data_mut())
            .zip(pi.log_prob())
        {
            let qmin = v1.min(v2);
            actor_loss += (alpha * lp - qmin) / nf;
            if v1 <= v2 {
                *p1 = -1.0 / nf;
            } else {
                *p2 = -1.0 / nf;
            }
        }
        // Input gradients of the critics (their parameter grads from this
        // pass are discarded below).
        self.q1.zero_grad();
        self.q2.zero_grad();
        let gi1 = self.q1.backward_with(a1, pick1, bw1);
        let gi2 = self.q2.backward_with(a2, pick2, bw2);
        self.q1.zero_grad();
        self.q2.zero_grad();
        grad_action.resize(n, self.action_dim);
        for b in 0..n {
            let r1 = &gi1.row(b)[self.obs_dim..];
            let r2 = &gi2.row(b)[self.obs_dim..];
            for ((g, &x1), &x2) in grad_action.row_mut(b).iter_mut().zip(r1).zip(r2) {
                *g = x1 + x2;
            }
        }
        let mean_logp = pi.log_prob().iter().sum::<f32>() / nf;
        if !actor_frozen {
            grad_logp.clear();
            grad_logp.resize(n, alpha / nf);
            self.actor.zero_grad();
            self.actor
                .backward_sample_with(pi, grad_action, grad_logp, actor_bw);
            self.opt_actor.step(|f| self.actor.visit_params(f));

            // ------- Temperature update -------
            // L(alpha) = -log_alpha * E[logp + target_entropy].
            let mut alpha_grad = [-(mean_logp + self.target_entropy)];
            let log_alpha = &mut self.log_alpha;
            self.opt_alpha.step(|f| f(log_alpha, &mut alpha_grad));
            // Keep alpha in a sane range.
            self.log_alpha[0] = self.log_alpha[0].clamp(-10.0, 2.0);
        }

        // ------- Target network update -------
        self.q1_target.polyak_from(&self.q1, self.config.tau);
        self.q2_target.polyak_from(&self.q2, self.config.tau);

        self.update_scratch = us;
        SacLosses {
            q1_loss,
            q2_loss,
            actor_loss,
            alpha: self.alpha(),
            entropy: -mean_logp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_env::PointEnv;
    use crate::env::{rollout, Env};
    use crate::replay::Transition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn learner(rng: &mut StdRng) -> Sac {
        Sac::new(1, 1, &[32, 32], SacConfig::default(), rng)
    }

    #[test]
    fn construction_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let sac = learner(&mut rng);
        assert_eq!(sac.obs_dim(), 1);
        assert_eq!(sac.action_dim(), 1);
        assert!((sac.alpha() - 0.1).abs() < 1e-6);
        let a = sac.act(&[0.5], &mut rng, true);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn update_runs_and_reports_finite_losses() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sac = learner(&mut rng);
        let mut rb = ReplayBuffer::new(1000, 1, 1);
        for i in 0..200 {
            let x = (i as f32 / 100.0) - 1.0;
            rb.push(Transition {
                obs: vec![x],
                action: vec![-x],
                reward: -x * x,
                next_obs: vec![x * 0.8],
                terminal: false,
            });
        }
        let losses = sac.update(&rb, &mut rng);
        assert!(losses.q1_loss.is_finite());
        assert!(losses.q2_loss.is_finite());
        assert!(losses.actor_loss.is_finite());
        assert!(losses.alpha > 0.0);
    }

    #[test]
    fn solves_point_env() {
        // End-to-end sanity: SAC should learn to drive the point to the
        // origin well above the random policy's return.
        let mut rng = StdRng::seed_from_u64(7);
        let mut env = PointEnv::new();
        let mut sac = Sac::new(
            1,
            1,
            &[32, 32],
            SacConfig {
                batch_size: 64,
                actor_lr: 1e-3,
                critic_lr: 1e-3,
                alpha_lr: 1e-3,
                ..SacConfig::default()
            },
            &mut rng,
        );
        let mut rb = ReplayBuffer::new(20_000, 1, 1);
        let mut seed = 0u64;
        let mut obs = env.reset(seed);
        for step in 0..4000 {
            let action = if step < 200 {
                vec![rng.gen_range(-1.0f32..1.0)]
            } else {
                sac.act(&obs, &mut rng, false)
            };
            let s = env.step(&action);
            rb.push(Transition {
                obs: obs.clone(),
                action,
                reward: s.reward,
                next_obs: s.obs.clone(),
                terminal: s.done,
            });
            let finished = s.finished();
            obs = s.obs;
            if finished {
                seed += 1;
                obs = env.reset(seed);
            }
            if step >= 200 {
                sac.update(&rb, &mut rng);
            }
        }
        // Evaluate deterministically over a few starts.
        let mut total = 0.0;
        for es in 100..105 {
            let (r, _) = rollout(
                &mut env,
                |o| sac.act(o, &mut StdRng::seed_from_u64(0), true),
                es,
            );
            total += r;
        }
        let mean = total / 5.0;
        // A decent policy keeps x near 0: return > -6 (random is ~ -15..-30).
        assert!(mean > -6.0, "mean return {mean}");
    }

    #[test]
    fn target_networks_track_critics() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sac = learner(&mut rng);
        let mut rb = ReplayBuffer::new(100, 1, 1);
        for _ in 0..50 {
            rb.push(Transition {
                obs: vec![0.1],
                action: vec![0.2],
                reward: 1.0,
                next_obs: vec![0.1],
                terminal: false,
            });
        }
        let before = sac.q1_target.forward(&Mat::from_row(&[0.1, 0.2])).get(0, 0);
        for _ in 0..50 {
            sac.update(&rb, &mut rng);
        }
        let after = sac.q1_target.forward(&Mat::from_row(&[0.1, 0.2])).get(0, 0);
        // Constant reward 1, gamma 0.99 → values drift up towards ~100.
        assert!(after > before, "target q should move: {before} -> {after}");
    }

    #[test]
    fn terminal_mask_stops_bootstrap() {
        // Two identical one-state problems, one with terminal transitions:
        // the terminal variant's Q must converge near the raw reward.
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = SacConfig {
            batch_size: 32,
            critic_lr: 3e-3,
            ..SacConfig::default()
        };
        let mut sac = Sac::new(1, 1, &[16], cfg, &mut rng);
        let mut rb = ReplayBuffer::new(100, 1, 1);
        for _ in 0..50 {
            rb.push(Transition {
                obs: vec![0.0],
                action: vec![0.0],
                reward: 1.0,
                next_obs: vec![0.0],
                terminal: true,
            });
        }
        for _ in 0..400 {
            sac.update(&rb, &mut rng);
        }
        let q = sac.q1_value(&[0.0], &[0.0]);
        assert!((q - 1.0).abs() < 0.4, "terminal Q should be ~1, got {q}");
    }

    #[test]
    fn actor_delay_freezes_actor_during_warmup() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = SacConfig {
            actor_delay: 10,
            batch_size: 16,
            ..SacConfig::default()
        };
        let mut sac = Sac::new(1, 1, &[16], cfg, &mut rng);
        let before = sac.actor.clone();
        let mut rb = ReplayBuffer::new(100, 1, 1);
        for _ in 0..40 {
            rb.push(Transition {
                obs: vec![0.3],
                action: vec![0.1],
                reward: 1.0,
                next_obs: vec![0.3],
                terminal: false,
            });
        }
        for _ in 0..10 {
            sac.update(&rb, &mut rng);
        }
        let obs = Mat::from_row(&[0.3]);
        assert_eq!(
            before.mean_action(&obs),
            sac.actor.mean_action(&obs),
            "actor must be untouched during warm-up"
        );
        assert_eq!(sac.updates(), 10);
        sac.update(&rb, &mut rng);
        assert_ne!(before.mean_action(&obs), sac.actor.mean_action(&obs));
    }

    #[test]
    fn state_round_trip_resumes_training_bit_exactly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sac = Sac::new(
            1,
            1,
            &[16],
            SacConfig {
                batch_size: 16,
                ..SacConfig::default()
            },
            &mut rng,
        );
        let mut rb = ReplayBuffer::new(200, 1, 1);
        for i in 0..60 {
            let x = (i as f32 / 30.0) - 1.0;
            rb.push(Transition {
                obs: vec![x],
                action: vec![-x],
                reward: -x * x,
                next_obs: vec![x * 0.9],
                terminal: i % 7 == 0,
            });
        }
        for _ in 0..20 {
            sac.update(&rb, &mut rng);
        }
        let mut buf = String::new();
        sac.encode_state_into(&mut buf);
        let mut r = Reader::new(&buf);
        let mut back = Sac::decode_state_from(&mut r, *sac.config()).expect("round trip");
        assert_eq!(back.updates(), sac.updates());
        assert_eq!(back.alpha(), sac.alpha());
        // Same RNG stream from here on: both learners must stay identical.
        let mut r1 = StdRng::seed_from_u64(77);
        let mut r2 = StdRng::seed_from_u64(77);
        for _ in 0..10 {
            let la = sac.update(&rb, &mut r1);
            let lb = back.update(&rb, &mut r2);
            assert_eq!(la, lb, "losses diverged after resume");
        }
        let mut d1 = StdRng::seed_from_u64(0);
        let mut d2 = StdRng::seed_from_u64(0);
        assert_eq!(
            sac.act(&[0.4], &mut d1, true),
            back.act(&[0.4], &mut d2, true)
        );
    }

    #[test]
    fn state_version_mismatch_is_typed() {
        let mut rng = StdRng::seed_from_u64(12);
        let sac = Sac::new(1, 1, &[8], SacConfig::default(), &mut rng);
        let mut buf = String::new();
        sac.encode_state_into(&mut buf);
        let tampered = buf.replacen("sac-state v1", "sac-state v9", 1);
        let mut r = Reader::new(&tampered);
        match Sac::decode_state_from(&mut r, SacConfig::default()) {
            Err(CheckpointError::Version { found, .. }) => assert_eq!(found, "v9"),
            other => panic!("expected Version error, got {other:?}"),
        }
    }

    use rand::Rng;
}
