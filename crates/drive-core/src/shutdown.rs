//! Graceful-shutdown latching for SIGTERM / SIGINT.
//!
//! A polite `kill` (or Ctrl-C) should never cost a long run its flushed
//! state: the handler installed here only latches a process-wide atomic
//! flag, and cooperative code polls [`requested`] at safe points — the
//! harness between grid cells, the serving loop between batches — then
//! drains, flushes, and exits cleanly. (SIGKILL remains the crash-safety
//! journal's problem; this module covers the *polite* signals.)
//!
//! The flag is a latch: once set it stays set, and a second signal does
//! not escalate (the default disposition is replaced for the process
//! lifetime). [`trigger`] sets the same latch programmatically so tests
//! and embedders can drive the drain path without real signals.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static REQUESTED: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();

/// Panic payload used to unwind out of deep work loops once shutdown is
/// requested. Layers that `catch_unwind` for *fault isolation* (retry,
/// resilience) must not treat this as a recoverable failure; the
/// top-level driver catches it and exits cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownRequested;

impl std::fmt::Display for ShutdownRequested {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shutdown requested (SIGTERM/SIGINT)")
    }
}

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // The platform C library is already linked by std on unix; binding
    // `signal` directly keeps this crate dependency-free. The handler
    // body is a single atomic store — async-signal-safe by construction.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::REQUESTED.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Installs the SIGTERM/SIGINT latch handlers (idempotent). Call once
/// near the top of `main` in any binary that wants graceful drains.
pub fn install() {
    INSTALL.call_once(imp::install);
}

/// Whether a shutdown signal (or [`trigger`]) has been latched.
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Latches the shutdown flag programmatically (tests, embedders).
pub fn trigger() {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Clears the latch. Test hook only: real shutdowns never un-request.
#[doc(hidden)]
pub fn clear_for_test() {
    REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_round_trip() {
        clear_for_test();
        assert!(!requested());
        trigger();
        assert!(requested());
        trigger();
        assert!(requested(), "latch stays set");
        clear_for_test();
        assert!(!requested());
    }

    #[test]
    fn install_is_idempotent() {
        install();
        install();
    }
}
