//! The Simplex-style degradation ladder.
//!
//! The paper's §VI defense keeps a hardened fallback behind a switcher;
//! this module is the serving-time analogue. Under deadline pressure or
//! detector alarm the service sheds *capability* instead of correctness,
//! descending one rung at a time:
//!
//! 1. [`Rung::Full`] — detector + learned policy (the whole pipeline).
//! 2. [`Rung::NoDetector`] — learned policy only; the detector's cost is
//!    shed to claw back deadline headroom.
//! 3. [`Rung::Fallback`] — the verified PID safety controller
//!    (`drive_agents::fallback`): cheap, bounded, and trustworthy even
//!    when observations are corrupt.
//!
//! A detector alarm jumps straight to the fallback (the learned policy is
//! exactly what an action-space attacker subverts). Recovery climbs back
//! **one rung at a time** after a configured calm period — hysteresis, so
//! an oscillating load cannot flap the ladder every batch. Every
//! transition is logged with its virtual/real timestamp and reason.

/// A capability level of the serving pipeline, ordered from most to least
/// capable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rung {
    /// Detector + learned policy.
    Full,
    /// Learned policy only (detector shed).
    NoDetector,
    /// PID safety controller only.
    Fallback,
}

impl Rung {
    /// One rung less capable (saturates at [`Rung::Fallback`]).
    pub fn descend(self) -> Rung {
        match self {
            Rung::Full => Rung::NoDetector,
            _ => Rung::Fallback,
        }
    }

    /// One rung more capable (saturates at [`Rung::Full`]).
    pub fn ascend(self) -> Rung {
        match self {
            Rung::Fallback => Rung::NoDetector,
            _ => Rung::Full,
        }
    }
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rung::Full => write!(f, "full"),
            Rung::NoDetector => write!(f, "no-detector"),
            Rung::Fallback => write!(f, "fallback"),
        }
    }
}

/// Why the ladder moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionReason {
    /// Queue depth crossed the high-water fraction.
    QueuePressure,
    /// Too many deadline expiries in one observation window.
    DeadlineMisses,
    /// The perturbation detector alarmed (or observations went
    /// non-finite): straight to the fallback.
    DetectorAlarm,
    /// A full calm period elapsed; one rung regained.
    Recovered,
}

impl std::fmt::Display for TransitionReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransitionReason::QueuePressure => write!(f, "queue-pressure"),
            TransitionReason::DeadlineMisses => write!(f, "deadline-misses"),
            TransitionReason::DetectorAlarm => write!(f, "detector-alarm"),
            TransitionReason::Recovered => write!(f, "recovered"),
        }
    }
}

/// One logged ladder movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// When, µs on the owning clock.
    pub at_us: u64,
    /// Rung before.
    pub from: Rung,
    /// Rung after.
    pub to: Rung,
    /// Why.
    pub reason: TransitionReason,
}

impl std::fmt::Display for Transition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t={}us {} -> {} ({})",
            self.at_us, self.from, self.to, self.reason
        )
    }
}

/// Thresholds governing descent and recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderConfig {
    /// Queue depth fraction (of capacity) that forces a descent.
    pub high_depth_frac: f64,
    /// Queue depth fraction below which the system counts as calm.
    pub low_depth_frac: f64,
    /// Deadline misses in a single observation that force a descent.
    pub miss_descend: u32,
    /// Calm microseconds required before ascending one rung.
    pub recover_after_us: u64,
    /// Detector budget estimate above which the ladder jumps to
    /// [`Rung::Fallback`].
    pub alarm_budget: f64,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            high_depth_frac: 0.75,
            low_depth_frac: 0.25,
            miss_descend: 1,
            recover_after_us: 50_000,
            alarm_budget: 0.2,
        }
    }
}

/// One observation of serving pressure, fed to [`Ladder::observe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pressure {
    /// Queue depth after the batch was taken.
    pub queue_depth: usize,
    /// Queue capacity.
    pub queue_capacity: usize,
    /// Requests that expired in this batch.
    pub deadline_misses: u32,
    /// Whether the detector (or an obs-sanity check) alarmed.
    pub alarm: bool,
}

/// The ladder state machine. Deterministic: rung trajectories depend only
/// on the sequence of `(now_us, Pressure)` observations.
#[derive(Debug, Clone)]
pub struct Ladder {
    config: LadderConfig,
    rung: Rung,
    calm_since: Option<u64>,
    transitions: Vec<Transition>,
}

impl Ladder {
    /// Starts at [`Rung::Full`].
    pub fn new(config: LadderConfig) -> Self {
        Ladder {
            config,
            rung: Rung::Full,
            calm_since: None,
            transitions: Vec::new(),
        }
    }

    /// The current rung.
    pub fn rung(&self) -> Rung {
        self.rung
    }

    /// The configuration in use.
    pub fn config(&self) -> &LadderConfig {
        &self.config
    }

    /// Every movement so far, in order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    fn shift(&mut self, at_us: u64, to: Rung, reason: TransitionReason) {
        if to == self.rung {
            return;
        }
        self.transitions.push(Transition {
            at_us,
            from: self.rung,
            to,
            reason,
        });
        self.rung = to;
    }

    /// Feeds one pressure observation at time `now_us`, returning the rung
    /// to use for the *next* batch.
    pub fn observe(&mut self, now_us: u64, p: Pressure) -> Rung {
        if p.alarm {
            self.calm_since = None;
            self.shift(now_us, Rung::Fallback, TransitionReason::DetectorAlarm);
            return self.rung;
        }
        let depth_frac = if p.queue_capacity == 0 {
            0.0
        } else {
            p.queue_depth as f64 / p.queue_capacity as f64
        };
        let missed = self.config.miss_descend > 0 && p.deadline_misses >= self.config.miss_descend;
        if depth_frac >= self.config.high_depth_frac || missed {
            self.calm_since = None;
            let reason = if missed {
                TransitionReason::DeadlineMisses
            } else {
                TransitionReason::QueuePressure
            };
            self.shift(now_us, self.rung.descend(), reason);
            return self.rung;
        }
        if depth_frac <= self.config.low_depth_frac && p.deadline_misses == 0 {
            match self.calm_since {
                None => self.calm_since = Some(now_us),
                Some(since) if now_us.saturating_sub(since) >= self.config.recover_after_us => {
                    // Restart the calm clock: each regained rung needs its
                    // own full calm period.
                    self.calm_since = Some(now_us);
                    self.shift(now_us, self.rung.ascend(), TransitionReason::Recovered);
                }
                Some(_) => {}
            }
        } else {
            // Mid-band pressure: neither descend nor accumulate calm.
            self.calm_since = None;
        }
        self.rung
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calm(depth: usize) -> Pressure {
        Pressure {
            queue_depth: depth,
            queue_capacity: 100,
            deadline_misses: 0,
            alarm: false,
        }
    }

    #[test]
    fn descends_one_rung_per_pressure_event_in_order() {
        let mut l = Ladder::new(LadderConfig::default());
        assert_eq!(l.rung(), Rung::Full);
        assert_eq!(l.observe(1, calm(80)), Rung::NoDetector);
        assert_eq!(l.observe(2, calm(90)), Rung::Fallback);
        // Saturates at the bottom.
        assert_eq!(l.observe(3, calm(95)), Rung::Fallback);
        let rungs: Vec<(Rung, Rung)> = l.transitions().iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            rungs,
            vec![
                (Rung::Full, Rung::NoDetector),
                (Rung::NoDetector, Rung::Fallback)
            ]
        );
    }

    #[test]
    fn deadline_misses_descend() {
        let mut l = Ladder::new(LadderConfig::default());
        let p = Pressure {
            deadline_misses: 2,
            ..calm(0)
        };
        assert_eq!(l.observe(1, p), Rung::NoDetector);
        assert_eq!(l.transitions()[0].reason, TransitionReason::DeadlineMisses);
    }

    #[test]
    fn alarm_jumps_straight_to_fallback() {
        let mut l = Ladder::new(LadderConfig::default());
        let p = Pressure {
            alarm: true,
            ..calm(0)
        };
        assert_eq!(l.observe(5, p), Rung::Fallback);
        assert_eq!(l.transitions().len(), 1);
        assert_eq!(l.transitions()[0].reason, TransitionReason::DetectorAlarm);
    }

    #[test]
    fn recovery_needs_a_full_calm_period_per_rung() {
        let cfg = LadderConfig {
            recover_after_us: 1_000,
            ..LadderConfig::default()
        };
        let mut l = Ladder::new(cfg);
        l.observe(
            0,
            Pressure {
                alarm: true,
                ..calm(0)
            },
        );
        assert_eq!(l.rung(), Rung::Fallback);
        // Calm starts at t=10; not yet recovered at t=500.
        assert_eq!(l.observe(10, calm(0)), Rung::Fallback);
        assert_eq!(l.observe(500, calm(0)), Rung::Fallback);
        // Full period elapsed: one rung only.
        assert_eq!(l.observe(1_200, calm(0)), Rung::NoDetector);
        // The next rung needs its own full period.
        assert_eq!(l.observe(1_300, calm(0)), Rung::NoDetector);
        assert_eq!(l.observe(2_400, calm(0)), Rung::Full);
        let reasons: Vec<TransitionReason> = l.transitions().iter().map(|t| t.reason).collect();
        assert_eq!(
            &reasons[1..],
            &[TransitionReason::Recovered, TransitionReason::Recovered]
        );
    }

    #[test]
    fn mid_band_pressure_resets_the_calm_clock() {
        let cfg = LadderConfig {
            recover_after_us: 1_000,
            ..LadderConfig::default()
        };
        let mut l = Ladder::new(cfg);
        l.observe(
            0,
            Pressure {
                alarm: true,
                ..calm(0)
            },
        );
        l.observe(10, calm(0)); // calm starts
        l.observe(600, calm(50)); // mid-band: resets calm
        assert_eq!(l.observe(1_100, calm(0)), Rung::Fallback, "calm restarted");
        assert_eq!(l.observe(2_200, calm(0)), Rung::NoDetector);
    }

    #[test]
    fn deterministic_trajectories() {
        let feed = |l: &mut Ladder| {
            let mut rungs = Vec::new();
            for t in 0..200u64 {
                let p = Pressure {
                    queue_depth: ((t * 13) % 101) as usize,
                    queue_capacity: 100,
                    deadline_misses: u32::from(t % 37 == 0),
                    alarm: t % 83 == 0 && t > 0,
                };
                rungs.push(l.observe(t * 100, p));
            }
            rungs
        };
        let mut a = Ladder::new(LadderConfig::default());
        let mut b = Ladder::new(LadderConfig::default());
        assert_eq!(feed(&mut a), feed(&mut b));
        assert_eq!(a.transitions(), b.transitions());
    }
}
