//! Throughput instrumentation for the experiment harness.
//!
//! [`ThroughputProbe`] snapshots the process-wide simulation-step and
//! gradient-update counters (`drive_sim::perf`, `drive_rl::perf`) together
//! with a wall clock; sampling it yields steps/sec and updates/sec for the
//! measured phase. [`PerfReport`] collects phase samples and serializes
//! them to JSON (written by `--perf-json <path>`; the criterion bench
//! target writes the same schema to `BENCH_perf.json`).

use drive_sim::perf::FleetCounters;
use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

/// Throughput of one measured phase.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PerfSample {
    /// Phase label (e.g. `"fig4"`).
    pub label: String,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Simulation control steps executed during the phase.
    pub steps: u64,
    /// Gradient updates performed during the phase.
    pub updates: u64,
    /// Batched-fleet counter deltas for the phase (all zero when the
    /// phase ran serially).
    pub fleet: FleetCounters,
}

impl PerfSample {
    /// Simulation steps per second (0 for an instantaneous phase).
    pub fn steps_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.steps as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Gradient updates per second (0 for an instantaneous phase).
    pub fn updates_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.updates as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Snapshot of the wall clock and both throughput counters.
///
/// Construct at a phase boundary, call [`ThroughputProbe::sample`] at the
/// end of the phase; deltas are cumulative across all worker threads.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputProbe {
    t0: Instant,
    steps0: u64,
    updates0: u64,
    fleet0: FleetCounters,
}

impl ThroughputProbe {
    /// Starts measuring from the current counter values.
    pub fn start() -> Self {
        ThroughputProbe {
            t0: Instant::now(),
            steps0: drive_sim::perf::steps(),
            updates0: drive_rl::perf::updates(),
            fleet0: drive_sim::perf::fleet(),
        }
    }

    /// Measures the phase since [`ThroughputProbe::start`].
    pub fn sample(&self, label: impl Into<String>) -> PerfSample {
        PerfSample {
            label: label.into(),
            wall_secs: self.t0.elapsed().as_secs_f64(),
            steps: drive_sim::perf::steps().saturating_sub(self.steps0),
            updates: drive_rl::perf::updates().saturating_sub(self.updates0),
            fleet: drive_sim::perf::fleet().since(&self.fleet0),
        }
    }
}

/// A collection of phase samples, serializable as JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfReport {
    /// Worker-thread count the phases ran with (`drive_par::jobs()`).
    pub jobs: usize,
    /// Per-phase throughput samples, in execution order.
    pub samples: Vec<PerfSample>,
}

impl PerfReport {
    /// A report stamped with the current `drive_par` worker count.
    pub fn new() -> Self {
        PerfReport {
            jobs: drive_par::jobs(),
            samples: Vec::new(),
        }
    }

    /// Appends a phase sample.
    pub fn push(&mut self, sample: PerfSample) {
        self.samples.push(sample);
    }

    /// Renders the report as a JSON document (no external serializer:
    /// the workspace has no JSON dependency, and the schema is flat).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"repro-bench/perf-v1\",\n");
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str("  \"phases\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            // Fleet counters only appear for phases that actually used the
            // batched engine, keeping serial-run exports unchanged.
            let fleet = if s.fleet.batches > 0 {
                format!(
                    ", \"fleet\": {{\"batches\": {}, \"episode_steps\": {}, \"episodes_in_flight\": {:.1}, \"occupancy\": {:.3}, \"infer_calls\": {}, \"infer_rows\": {}, \"infer_ns_per_row\": {:.1}, \"control_ns_per_step\": {:.1}, \"integrate_ns_per_step\": {:.1}, \"outcome_ns_per_step\": {:.1}}}",
                    s.fleet.batches,
                    s.fleet.slot_steps,
                    s.fleet.episodes_in_flight(),
                    s.fleet.occupancy(),
                    s.fleet.infer_calls,
                    s.fleet.infer_rows,
                    s.fleet.infer_ns_per_row(),
                    s.fleet.control_ns_per_slot_step(),
                    s.fleet.integrate_ns_per_slot_step(),
                    s.fleet.outcome_ns_per_slot_step(),
                )
            } else {
                String::new()
            };
            out.push_str(&format!(
                "    {{\"label\": {}, \"wall_secs\": {:.3}, \"steps\": {}, \"updates\": {}, \"steps_per_sec\": {:.1}, \"updates_per_sec\": {:.1}{}}}{}\n",
                json_string(&s.label),
                s.wall_secs,
                s.steps,
                s.updates,
                s.steps_per_sec(),
                s.updates_per_sec(),
                fleet,
                if i + 1 < self.samples.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report, creating parent directories as needed.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }

    /// One human-readable summary line per phase.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&format!(
                "[perf] {:<12} {:>8.2}s  {:>10.0} steps/s  {:>8.0} updates/s\n",
                s.label,
                s.wall_secs,
                s.steps_per_sec(),
                s.updates_per_sec()
            ));
            if s.fleet.batches > 0 {
                out.push_str(&format!(
                    "[perf] {:<12} fleet: {:.1} episodes in flight, {:.0}% occupancy, {:.0} ns/inference\n",
                    "", // continuation line, aligned under the phase label
                    s.fleet.episodes_in_flight(),
                    s.fleet.occupancy() * 100.0,
                    s.fleet.infer_ns_per_row()
                ));
                out.push_str(&format!(
                    "[perf] {:<12} phases: {:.0} control / {:.0} integrate / {:.0} outcome ns per slot-step\n",
                    "",
                    s.fleet.control_ns_per_slot_step(),
                    s.fleet.integrate_ns_per_slot_step(),
                    s.fleet.outcome_ns_per_slot_step()
                ));
            }
        }
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_measures_counter_deltas() {
        let probe = ThroughputProbe::start();
        drive_sim::perf::record_steps(7);
        drive_rl::perf::record_updates(3);
        let s = probe.sample("unit");
        assert!(s.steps >= 7);
        assert!(s.updates >= 3);
        assert!(s.wall_secs >= 0.0);
    }

    #[test]
    fn rates_are_zero_for_zero_wall_time() {
        let s = PerfSample {
            label: "x".into(),
            wall_secs: 0.0,
            steps: 10,
            updates: 10,
            ..PerfSample::default()
        };
        assert_eq!(s.steps_per_sec(), 0.0);
        assert_eq!(s.updates_per_sec(), 0.0);
    }

    #[test]
    fn json_report_round_trips_structure() {
        let mut r = PerfReport::new();
        r.push(PerfSample {
            label: "fig4".into(),
            wall_secs: 2.0,
            steps: 1000,
            updates: 50,
            ..PerfSample::default()
        });
        r.push(PerfSample {
            label: "total \"quoted\"".into(),
            wall_secs: 4.0,
            steps: 2000,
            updates: 100,
            ..PerfSample::default()
        });
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"repro-bench/perf-v1\""));
        assert!(json.contains("\"steps_per_sec\": 500.0"));
        assert!(json.contains("\\\"quoted\\\""));
        // Exactly one trailing comma between the two phase objects.
        assert_eq!(json.matches("},\n").count(), 1);
        let dir = std::env::temp_dir().join("repro-bench-perf-test");
        let path = dir.join("perf.json");
        r.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), json);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_lists_each_phase() {
        let mut r = PerfReport::new();
        r.push(PerfSample {
            label: "baseline".into(),
            wall_secs: 1.0,
            steps: 100,
            updates: 0,
            ..PerfSample::default()
        });
        let text = r.summary();
        assert!(text.contains("baseline"));
        assert!(text.contains("steps/s"));
        // Serial phases get no fleet continuation line.
        assert!(!text.contains("fleet:"));
    }

    fn fleet_sample(label: &str) -> PerfSample {
        PerfSample {
            label: label.into(),
            wall_secs: 2.0,
            steps: 4000,
            updates: 0,
            fleet: FleetCounters {
                batches: 50,
                slot_steps: 4000,
                capacity: 6400,
                infer_ns: 2_000_000,
                infer_rows: 4000,
                infer_calls: 50,
                control_ns: 3_200_000,
                integrate_ns: 1_600_000,
                outcome_ns: 400_000,
            },
        }
    }

    #[test]
    fn fleet_counters_appear_in_json_only_for_fleet_phases() {
        let mut r = PerfReport::new();
        r.push(fleet_sample("fig4"));
        r.push(PerfSample {
            label: "serial".into(),
            wall_secs: 1.0,
            steps: 10,
            updates: 0,
            ..PerfSample::default()
        });
        let json = r.to_json();
        assert_eq!(json.matches("\"fleet\":").count(), 1);
        assert!(json.contains("\"episodes_in_flight\": 80.0"), "{json}");
        assert!(json.contains("\"occupancy\": 0.625"), "{json}");
        assert!(json.contains("\"infer_ns_per_row\": 500.0"), "{json}");
        assert!(json.contains("\"episode_steps\": 4000"), "{json}");
        assert!(json.contains("\"control_ns_per_step\": 800.0"), "{json}");
        assert!(json.contains("\"integrate_ns_per_step\": 400.0"), "{json}");
        assert!(json.contains("\"outcome_ns_per_step\": 100.0"), "{json}");
    }

    #[test]
    fn fleet_summary_line_reports_derived_metrics() {
        let mut r = PerfReport::new();
        r.push(fleet_sample("fig4"));
        let text = r.summary();
        assert!(text.contains("fleet: 80.0 episodes in flight"), "{text}");
        assert!(text.contains("62% occupancy"), "{text}");
        assert!(text.contains("500 ns/inference"), "{text}");
        assert!(
            text.contains("phases: 800 control / 400 integrate / 100 outcome ns per slot-step"),
            "{text}"
        );
    }

    #[test]
    fn probe_captures_fleet_deltas() {
        let probe = ThroughputProbe::start();
        drive_sim::perf::record_fleet_batch(16);
        drive_sim::perf::record_fleet_capacity(32);
        drive_sim::perf::record_fleet_infer(8_000, 16);
        let s = probe.sample("unit");
        assert!(s.fleet.batches >= 1);
        assert!(s.fleet.slot_steps >= 16);
        assert!(s.fleet.capacity >= 32);
        assert!(s.fleet.infer_rows >= 16);
    }
}
