#![warn(missing_docs)]

//! # repro-bench — the experiment engine for every figure of the paper
//!
//! Each module of [`experiments`] regenerates one figure (or the baseline /
//! ablations) from the trained [`attack_core::pipeline::Artifacts`]. All of
//! them implement the [`engine::Experiment`] trait and register in
//! [`engine::Registry`]; the CLI ([`cli`]) and every binary in `src/bin/`
//! dispatch through the registry, and [`engine::execute`] emits a
//! [`manifest::Manifest`] next to each run's CSVs. The `figures` bench
//! target runs the same engine at smoke scale under `cargo bench`;
//! criterion micro-benches of the substrate live in the `perf` bench
//! target, and `repro_bench bench-compare` ([`benchcmp`]) gates their
//! `PERF_JSON` export against the checked-in `BENCH_perf.json` baseline.

pub mod benchcmp;
pub mod cli;
pub mod engine;
pub mod experiments;
pub mod harness;
pub mod journal;
mod json;
pub mod loadgen;
pub mod manifest;
pub mod merge;
pub mod perf;
pub mod resilience;
pub mod servecli;
pub mod shard;

pub use benchcmp::{compare_files, BenchDelta, BenchStatus, Comparison};
pub use engine::{execute, EngineRun, Experiment, ExperimentOutput, Registry, RunContext};
pub use harness::{attacked_records, build_agent, AgentKind, Scale};
pub use journal::{JournalError, JournalHandle, RunHeader};
pub use loadgen::{find_max_qps, run_loadgen, LoadgenConfig, LoadgenReport, LogicalStats};
pub use manifest::{Manifest, OutputEntry};
pub use perf::{PerfReport, PerfSample, ThroughputProbe};
pub use resilience::{run_cell, CellOutcome, ResilienceConfig};
pub use shard::{ShardConfig, ShardHeader, ShardState};
