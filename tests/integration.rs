//! Cross-crate integration tests: the full attack loop from simulator
//! through agents, attacks, and metrics.

use ad_action_attacks::prelude::*;

/// The modular pipeline overtakes the traffic in the nominal scenario.
#[test]
fn modular_pipeline_completes_nominal_scenario() {
    let mut agent = ModularAgent::new(ModularConfig::default(), 1);
    let records = run_episodes(&mut agent, &Scenario::default(), 10, 0);
    let summary = CellSummary::from_records(&records);
    assert_eq!(summary.collision_rate, 0.0, "no collisions expected");
    assert!(
        summary.mean_passed >= 4.5,
        "mean passed {}",
        summary.mean_passed
    );
    assert!(
        summary.nominal.mean > 120.0,
        "mean reward {}",
        summary.nominal.mean
    );
}

/// The oracle action-space attack converts clean episodes into side
/// collisions, and the metrics pipeline sees exactly that.
#[test]
fn oracle_attack_end_to_end_through_metrics() {
    let scenario = Scenario::default();
    let adv = AdvReward::default();
    let mut agent = ModularAgent::new(ModularConfig::default(), 1);

    let attacked = run_attacked_episodes(
        &mut agent,
        |_| Some(OracleAttacker::new(AttackBudget::new(1.0))),
        &adv,
        &scenario,
        10,
        100,
    );
    let summary = CellSummary::from_records(&attacked);
    assert!(
        summary.success_rate >= 0.5,
        "success {}",
        summary.success_rate
    );
    assert!(summary.adversarial.mean > 0.0);

    // Scatter + windowing shape checks (Fig. 5 / Fig. 8 machinery).
    let points = scatter_points(&attacked);
    assert_eq!(points.len(), 10);
    let windows = fig8_windows(&points);
    let total: usize = windows.iter().map(|w| w.count).sum();
    assert_eq!(total, 10, "every episode lands in exactly one window");

    // Timing statistic exists and is faster than a human's 1.25 s.
    let (mean_ttc, min_ttc) = time_to_collision_stats(&attacked).expect("successes exist");
    assert!(min_ttc <= mean_ttc + 1e-9);
    assert!(
        mean_ttc < 5.0,
        "side collisions happen quickly, got {mean_ttc}"
    );
}

/// The attack budget monotonically controls damage to the victim.
#[test]
fn budget_monotonically_degrades_driving() {
    let scenario = Scenario::default();
    let adv = AdvReward::default();
    let mut nominal_means = Vec::new();
    for eps in [0.0, 0.5, 1.0] {
        let mut agent = ModularAgent::new(ModularConfig::default(), 1);
        let records = run_attacked_episodes(
            &mut agent,
            |_| (eps > 0.0).then(|| OracleAttacker::new(AttackBudget::new(eps))),
            &adv,
            &scenario,
            8,
            200,
        );
        nominal_means.push(CellSummary::from_records(&records).nominal.mean);
    }
    assert!(
        nominal_means[0] > nominal_means[1] && nominal_means[1] >= nominal_means[2] - 1.0,
        "nominal reward should fall with budget: {nominal_means:?}"
    );
}

/// A behaviour-cloned end-to-end agent drives the scenario through the
/// full RL + NN stack (tiny training budget — this is a wiring test).
#[test]
fn end_to_end_agent_trains_and_drives() {
    use drive_agents::training::{train_victim, VictimTrainConfig};

    let scenario = Scenario::default();
    let features = FeatureConfig::default();
    let config = VictimTrainConfig {
        demo_episodes: 12,
        bc_steps: 1200,
        sac_steps: 0,
        ..VictimTrainConfig::default()
    };
    let policy = train_victim(&scenario, &features, &config);
    let mut agent = E2eAgent::new(policy, features, 0, true);
    let records = run_episodes(&mut agent, &scenario, 3, 500);
    let summary = CellSummary::from_records(&records);
    // Tiny budget: just require sane driving (moves forward, mostly clean).
    assert!(
        summary.nominal.mean > 0.0,
        "reward {}",
        summary.nominal.mean
    );
}

/// Checkpointing round-trips a policy through disk and the loaded policy
/// behaves identically inside an agent.
#[test]
fn checkpoint_round_trip_preserves_behavior() {
    use ad_action_attacks::nn::checkpoint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let features = FeatureConfig::default();
    let mut rng = StdRng::seed_from_u64(9);
    let policy = GaussianPolicy::new(features.observation_dim(), &[32, 32], 2, &mut rng);

    let dir = std::env::temp_dir().join("ad-action-attacks-integration");
    let path = dir.join("policy.ckpt");
    checkpoint::save_to_file(&path, &checkpoint::encode_policy(&policy)).unwrap();
    let loaded = checkpoint::decode_policy(&checkpoint::load_from_file(&path).unwrap()).unwrap();

    let scenario = Scenario::default();
    let mut a = E2eAgent::new(policy, features.clone(), 1, true);
    let mut b = E2eAgent::new(loaded, features, 1, true);
    let ra = run_episode(&mut a, &scenario, 3, None, |_, _, _| {});
    let rb = run_episode(&mut b, &scenario, 3, None, |_, _, _| {});
    assert_eq!(ra, rb);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The PNN switcher routes between columns and both drive the scenario.
#[test]
fn pnn_switcher_drives_both_columns() {
    use ad_action_attacks::attacks::defense::SimplexSwitcher;
    use ad_action_attacks::nn::pnn::{PnnInit, PnnPolicy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let features = FeatureConfig::default();
    let mut rng = StdRng::seed_from_u64(4);
    let base = GaussianPolicy::new(features.observation_dim(), &[32], 2, &mut rng);
    let pnn = PnnPolicy::new(base, PnnInit::CopyBase, &mut rng);
    let scenario = Scenario::default();

    for eps in [0.1, 0.9] {
        let switcher = SimplexSwitcher::new(pnn.clone(), 0.4, eps);
        let mut agent = E2eAgent::new(switcher, features.clone(), 0, true);
        let rec = run_episode(&mut agent, &scenario, 11, None, |_, _, _| {});
        assert!(rec.steps > 0);
    }
    // CopyBase + zero laterals: both columns act identically, so the
    // records must match across the switch threshold.
    let mut low = E2eAgent::new(
        SimplexSwitcher::new(pnn.clone(), 0.4, 0.1),
        features.clone(),
        0,
        true,
    );
    let mut high = E2eAgent::new(SimplexSwitcher::new(pnn, 0.4, 0.9), features, 0, true);
    let rl = run_episode(&mut low, &scenario, 11, None, |_, _, _| {});
    let rh = run_episode(&mut high, &scenario, 11, None, |_, _, _| {});
    assert_eq!(rl, rh);
}

/// IMU and camera attackers plug into the same runner interchangeably.
#[test]
fn learned_attacker_sensors_are_interchangeable() {
    use ad_action_attacks::attacks::learned::LearnedAttacker;
    use ad_action_attacks::attacks::sensor::AttackerSensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let features = FeatureConfig::default();
    let imu_cfg = ImuConfig::default();
    let scenario = Scenario::default();
    let adv = AdvReward::default();
    let mut rng = StdRng::seed_from_u64(2);
    let cam_policy = GaussianPolicy::new(features.observation_dim(), &[16], 1, &mut rng);
    let imu_policy = GaussianPolicy::new(imu_cfg.observation_dim(), &[16], 1, &mut rng);

    for (policy, sensor) in [
        (&cam_policy, AttackerSensor::camera(features.clone())),
        (&imu_policy, AttackerSensor::imu(imu_cfg.clone(), 3)),
    ] {
        let mut agent = ModularAgent::new(ModularConfig::default(), 1);
        let mut attacker =
            LearnedAttacker::new(policy.clone(), sensor, AttackBudget::new(0.5), 1, true);
        let rec = run_attacked_episode(&mut agent, Some(&mut attacker), &adv, &scenario, 5);
        assert!(rec.steps > 0);
        assert!(rec.attack_effort() <= 0.5 + 1e-9);
    }
}
