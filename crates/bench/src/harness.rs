//! Shared plumbing for the figure harnesses: building the cast of agents
//! and attackers from pipeline artifacts and collecting attacked episode
//! records.

use attack_core::adv_reward::AdvReward;
use attack_core::budget::AttackBudget;
use attack_core::defense::SimplexSwitcher;
use attack_core::eval::run_attacked_episode_with_faults;
use attack_core::learned::LearnedAttacker;
use attack_core::pipeline::{Artifacts, PipelineConfig};
use attack_core::sensor::{AttackerSensor, SensorKind};
use drive_agents::e2e::E2eAgent;
use drive_agents::modular::{ModularAgent, ModularConfig};
use drive_agents::Agent;
use drive_nn::gaussian::GaussianPolicy;
use drive_sim::batch::Precision;
use drive_sim::faults::{FaultInjector, FaultSchedule};
use drive_sim::record::EpisodeRecord;
use drive_sim::scenario::Scenario;

/// The driving agents evaluated across the figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgentKind {
    /// The modular planner + PID pipeline.
    Modular,
    /// The original end-to-end agent `pi_ori`.
    E2e,
    /// Fine-tuned `pi_adv, rho = 1/11`.
    AdvRhoSmall,
    /// Fine-tuned `pi_adv, rho = 1/2`.
    AdvRhoHalf,
    /// PNN behind a switcher with `sigma = 0.2`.
    PnnSigma02,
    /// PNN behind a switcher with `sigma = 0.4`.
    PnnSigma04,
}

impl AgentKind {
    /// The agents of Fig. 6 / Fig. 8 (nominal + four enhanced).
    pub fn enhanced_lineup() -> [AgentKind; 5] {
        [
            AgentKind::E2e,
            AgentKind::AdvRhoSmall,
            AgentKind::AdvRhoHalf,
            AgentKind::PnnSigma02,
            AgentKind::PnnSigma04,
        ]
    }

    /// Paper-style display name.
    pub fn label(&self) -> &'static str {
        match self {
            AgentKind::Modular => "modular",
            AgentKind::E2e => "pi_ori",
            AgentKind::AdvRhoSmall => "pi_adv(rho=1/11)",
            AgentKind::AdvRhoHalf => "pi_adv(rho=1/2)",
            AgentKind::PnnSigma02 => "pi_pnn(sigma=0.2)",
            AgentKind::PnnSigma04 => "pi_pnn(sigma=0.4)",
        }
    }
}

/// Builds a fresh agent of the given kind.
///
/// The PNN agents' Simplex switcher is told the active `budget` (the
/// paper's idealized budget-aware switcher).
pub fn build_agent(
    kind: AgentKind,
    artifacts: &Artifacts,
    config: &PipelineConfig,
    budget: AttackBudget,
    seed: u64,
) -> Box<dyn Agent> {
    let features = config.features.clone();
    match kind {
        AgentKind::Modular => Box::new(ModularAgent::new(ModularConfig::default(), 1)),
        AgentKind::E2e => Box::new(E2eAgent::new(
            artifacts.victim.clone(),
            features,
            seed,
            true,
        )),
        AgentKind::AdvRhoSmall => Box::new(E2eAgent::new(
            artifacts.adv_rho_small.clone(),
            features,
            seed,
            true,
        )),
        AgentKind::AdvRhoHalf => Box::new(E2eAgent::new(
            artifacts.adv_rho_half.clone(),
            features,
            seed,
            true,
        )),
        AgentKind::PnnSigma02 => Box::new(E2eAgent::new(
            SimplexSwitcher::new(artifacts.pnn.clone(), 0.2, budget.epsilon()),
            features,
            seed,
            true,
        )),
        AgentKind::PnnSigma04 => Box::new(E2eAgent::new(
            SimplexSwitcher::new(artifacts.pnn.clone(), 0.4, budget.epsilon()),
            features,
            seed,
            true,
        )),
    }
}

/// The victim policy for fleet stepping, when `kind` is a plain
/// `GaussianPolicy` driver. Simplex/PNN and modular agents carry per-step
/// branching state that does not batch — they return `None` and stay on
/// the serial path.
fn fleet_victim(kind: AgentKind, artifacts: &Artifacts) -> Option<&GaussianPolicy> {
    match kind {
        AgentKind::E2e => Some(&artifacts.victim),
        AgentKind::AdvRhoSmall => Some(&artifacts.adv_rho_small),
        AgentKind::AdvRhoHalf => Some(&artifacts.adv_rho_half),
        AgentKind::Modular | AgentKind::PnnSigma02 | AgentKind::PnnSigma04 => None,
    }
}

/// A per-cell scenario override: an evaluation cell that runs on a
/// scenario other than the pipeline's default freeway (the
/// `scenario-matrix` experiment's generated worlds), optionally with a
/// benign fault schedule in the loop.
///
/// The `fingerprint` is mixed into the journal cell key and label so a
/// generated-scenario cell can never replay records from the default
/// scenario (or from a differently generated one).
#[derive(Debug, Clone, Copy)]
pub struct ScenarioCell<'a> {
    /// The world the cell's episodes run in.
    pub scenario: &'a Scenario,
    /// Stable content hash of the scenario (see
    /// `drive_sim::scenario::ScenarioSpec::fingerprint`).
    pub fingerprint: u64,
    /// Optional actuation-side fault schedule; `None` or a no-op schedule
    /// leaves the loop fault-free.
    pub faults: Option<&'a FaultSchedule>,
}

impl<'a> ScenarioCell<'a> {
    /// Whether this cell injects actuation faults.
    fn has_faults(&self) -> bool {
        self.faults.is_some_and(|f| !f.is_noop())
    }
}

/// Collects attacked episode records for one `(agent, attack policy,
/// budget)` cell.
///
/// `seeds` is the cell's namespace in the run's seed tree: the agent's
/// exploration stream derives from `seeds/agent`, episode seeds from
/// `seeds/episodes`. A zero budget (or `attack == None`) yields the
/// nominal, unattacked cell.
pub fn attacked_records(
    kind: AgentKind,
    attack: Option<(&GaussianPolicy, SensorKind)>,
    budget: AttackBudget,
    ctx: &crate::engine::RunContext,
    episodes: usize,
    seeds: &drive_seed::SeedTree,
) -> Vec<EpisodeRecord> {
    attacked_records_in(kind, attack, budget, ctx, episodes, seeds, None)
}

/// [`attacked_records`] with an optional [`ScenarioCell`] override.
///
/// With `cell == None` this is byte-identical to [`attacked_records`] —
/// same records, same journal keys — so every pre-existing experiment and
/// journal is unaffected. With an override, the scenario fingerprint (and
/// a fault tag, when scheduled) extends the cell label and journal key.
pub fn attacked_records_in(
    kind: AgentKind,
    attack: Option<(&GaussianPolicy, SensorKind)>,
    budget: AttackBudget,
    ctx: &crate::engine::RunContext,
    episodes: usize,
    seeds: &drive_seed::SeedTree,
    cell: Option<ScenarioCell<'_>>,
) -> Vec<EpisodeRecord> {
    // Crash-safety fast path: a cell journaled by an earlier (killed) run
    // replays from its sidecar. The key pins everything the records are a
    // function of — the seed namespace, the run seed, and the cell's own
    // coordinates — while the journal header pins the pipeline config the
    // artifacts derive from.
    let sensor_name = match attack {
        None => "none",
        Some((_, SensorKind::Camera)) => "camera",
        Some((_, SensorKind::Imu)) => "imu",
    };
    // Fleet-stepped Golden cells share the serial key (they are
    // byte-identical — see `attack_core::fleet`); Fast (`f32`) cells get a
    // distinct key so reduced-precision records can never be replayed into
    // a golden run, or vice versa. Faulted cells carry per-step injector
    // state that does not batch, so they stay on the serial path.
    let fleet_routable = ctx.fleet.is_some()
        && fleet_victim(kind, ctx.artifacts).is_some()
        && !cell.is_some_and(|c| c.has_faults());
    let precision_tag = if fleet_routable && ctx.precision == Precision::Fast {
        "|f32"
    } else {
        ""
    };
    // Scenario-override cells key on the scenario's content hash (and its
    // fault schedule); the default scenario keeps the tagless legacy key.
    let scenario_tag = match cell {
        None => String::new(),
        Some(c) => {
            let fault_tag = match c.faults.filter(|f| !f.is_noop()) {
                None => String::new(),
                Some(f) => format!(
                    "|flt={:016x}",
                    drive_seed::fnv1a_64(format!("{f:?}").as_bytes())
                ),
            };
            format!("|scn={:016x}{}", c.fingerprint, fault_tag)
        }
    };
    let cell_label = format!(
        "{}|{}|{}|eps={}|{}ep{}{}",
        seeds.path(),
        kind.label(),
        sensor_name,
        budget.epsilon(),
        episodes,
        precision_tag,
        scenario_tag
    );
    let cell_key = drive_seed::fnv1a_64(
        format!(
            "cell|{}|{:016x}|{:?}|{}|{:016x}|{}{}{}",
            seeds.path(),
            ctx.scale.seed,
            kind,
            sensor_name,
            budget.epsilon().to_bits(),
            episodes,
            precision_tag,
            scenario_tag
        )
        .as_bytes(),
    );
    // Sharded multi-process path: the lease coordinator decides whether
    // this worker loads a peer's published sidecar, computes the cell
    // under an exclusive lease, or waits out (and eventually steals from)
    // the current owner. It owns its own shutdown safe points.
    if let Some(shard) = &ctx.shard {
        return shard.run_cell(cell_key, &cell_label, episodes, || {
            compute_cell(
                kind,
                attack,
                budget,
                ctx,
                episodes,
                seeds,
                cell,
                fleet_routable,
                &cell_label,
            )
        });
    }
    if let Some(journal) = &ctx.journal {
        if let Some(records) = journal.load_cell(cell_key, episodes) {
            return records;
        }
    }
    // Merge probe: with a missing-cells collector installed, a cell the
    // journal cannot replay is *recorded* rather than simulated (default
    // episodes keep downstream aggregation well-formed), so one cheap
    // pass enumerates a sharded run's gaps.
    if let Some(missing) = &ctx.missing_cells {
        missing
            .lock()
            .expect("missing-cells lock")
            .push(cell_label.clone());
        return vec![EpisodeRecord::default(); episodes];
    }
    // Graceful-shutdown safe point: between cells every completed cell is
    // already journaled, so unwinding out here leaves a run the CLI can
    // `--resume` to a byte-identical finish. The sentinel payload is
    // caught by the top-level driver, never by the episode retry layer.
    if drive_core::shutdown::requested() {
        std::panic::panic_any(drive_core::shutdown::ShutdownRequested);
    }
    let (records, clean) = compute_cell(
        kind,
        attack,
        budget,
        ctx,
        episodes,
        seeds,
        cell,
        fleet_routable,
        &cell_label,
    );
    // Journal only clean, complete cells: a cell with retried-out episodes
    // is partial and must be recomputed on resume. Journal failures cost a
    // recomputation later, never correctness — warn and continue.
    if let Some(journal) = &ctx.journal {
        if clean && records.len() == episodes {
            if let Err(e) = journal.store_cell(cell_key, &cell_label, episodes, &records) {
                eprintln!("warning: could not journal cell {cell_label}: {e}");
            }
        }
    }
    records
}

/// The compute body of one cell, shared by the single-process and sharded
/// paths: fleet fast path (with serial fallback on panic) or the hardened
/// serial executor. Returns the records plus a clean flag (`true` when
/// every episode succeeded), which gates journaling / sidecar publication.
#[allow(clippy::too_many_arguments)]
fn compute_cell(
    kind: AgentKind,
    attack: Option<(&GaussianPolicy, SensorKind)>,
    budget: AttackBudget,
    ctx: &crate::engine::RunContext,
    episodes: usize,
    seeds: &drive_seed::SeedTree,
    cell: Option<ScenarioCell<'_>>,
    fleet_routable: bool,
    cell_label: &str,
) -> (Vec<EpisodeRecord>, bool) {
    let artifacts = ctx.artifacts;
    let config = ctx.config;
    let scenario = cell.map_or(&config.scenario, |c| c.scenario);
    let fault_schedule = cell.and_then(|c| c.faults.filter(|f| !f.is_noop()));
    let adv = AdvReward::default();
    // Fleet fast path: plain-GaussianPolicy victims batch across episodes
    // (one GEMM per layer per lockstep step). Golden precision is
    // byte-identical to the serial loop below; a panicking fleet cell
    // falls back to the serial path, whose per-episode retry machinery
    // can isolate the bad episode.
    if fleet_routable {
        let (batch, victim) = (
            ctx.fleet.expect("fleet_routable checked"),
            fleet_victim(kind, artifacts).expect("fleet_routable checked"),
        );
        let eval = attack_core::fleet::FleetEval {
            victim,
            features: config.features.clone(),
            attack,
            imu: config.imu.clone(),
            budget,
            adv: AdvReward::default(),
            scenario: scenario.clone(),
        };
        let plan = attack_core::fleet::FleetPlan {
            batch,
            precision: ctx.precision,
        };
        let base_seed = seeds.child("episodes").seed();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eval.run(episodes, base_seed, plan)
        })) {
            Ok(records) => return (records, true),
            Err(payload) => {
                // The graceful-shutdown sentinel must reach the top-level
                // driver, not the serial fallback.
                if payload.is::<drive_core::shutdown::ShutdownRequested>() {
                    std::panic::resume_unwind(payload);
                }
                eprintln!("warning: fleet cell {cell_label} panicked; retrying on the serial path");
            }
        }
    }
    let mut agent = build_agent(kind, artifacts, config, budget, seeds.child("agent").seed());
    // Episodes run through the hardened cell executor: one panicking
    // episode is retried with a fresh seed instead of aborting the whole
    // figure run. First attempts use `base + e` off the cell's episode
    // namespace, so healthy cells stay deterministic for any worker count.
    let outcome = crate::resilience::run_cell(
        episodes,
        seeds.child("episodes").seed(),
        &ctx.resilience,
        |seed| {
            let mut attacker = attack.and_then(|(policy, sensor_kind)| {
                if budget.is_zero() {
                    return None;
                }
                let sensor = match sensor_kind {
                    SensorKind::Camera => AttackerSensor::camera(config.features.clone()),
                    SensorKind::Imu => AttackerSensor::imu(config.imu.clone(), seed),
                };
                Some(LearnedAttacker::new(
                    policy.clone(),
                    sensor,
                    budget,
                    seed,
                    true,
                ))
            });
            let mut faults = fault_schedule.map(|s| FaultInjector::for_episode(s, seed));
            run_attacked_episode_with_faults(
                agent.as_mut(),
                attacker
                    .as_mut()
                    .map(|a| a as &mut dyn drive_agents::runner::SteerAttacker),
                &adv,
                scenario,
                seed,
                faults.as_mut(),
            )
        },
    );
    if !outcome.failures.is_empty() {
        eprintln!(
            "warning: {}/{} episode(s) failed after retries ({} agent); continuing with partial results",
            outcome.failures.len(),
            episodes,
            kind.label(),
        );
    }
    let clean = outcome.failures.is_empty();
    (outcome.into_records(), clean)
}

/// Experiment scale: the paper's episode counts or a fast smoke preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Episodes per box-plot cell (paper: 30).
    pub box_episodes: usize,
    /// Rounds per budget in the scatter sweeps (paper: 10).
    pub scatter_rounds: usize,
    /// Base evaluation seed.
    pub seed: u64,
}

impl Scale {
    /// The paper's evaluation scale.
    pub fn paper() -> Self {
        Scale {
            box_episodes: 30,
            scatter_rounds: 10,
            seed: 10_000,
        }
    }

    /// A reduced scale for smoke tests and `cargo bench` figure targets.
    pub fn smoke() -> Self {
        Scale {
            box_episodes: 4,
            scatter_rounds: 2,
            seed: 10_000,
        }
    }

    /// Picks the scale from CLI args (`--smoke`) or an env var
    /// (`REPRO_SCALE=smoke`).
    pub fn from_env() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke")
            || std::env::var("REPRO_SCALE").is_ok_and(|v| v == "smoke");
        if smoke {
            Scale::smoke()
        } else {
            Scale::paper()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attack_core::pipeline::prepare;

    fn quick_setup() -> (Artifacts, PipelineConfig) {
        let dir = std::env::temp_dir().join("repro-bench-harness-test");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        (artifacts, config)
    }

    #[test]
    fn builds_every_agent_kind() {
        let (artifacts, config) = quick_setup();
        for kind in [
            AgentKind::Modular,
            AgentKind::E2e,
            AgentKind::AdvRhoSmall,
            AgentKind::AdvRhoHalf,
            AgentKind::PnnSigma02,
            AgentKind::PnnSigma04,
        ] {
            let mut agent = build_agent(kind, &artifacts, &config, AttackBudget::new(0.5), 0);
            let world = drive_sim::world::World::new(config.scenario.clone());
            agent.reset(&world);
            let a = agent.act(&world);
            assert!(a.steer.abs() <= 1.0, "{kind:?}");
        }
    }

    #[test]
    fn attacked_records_nominal_vs_attacked() {
        let (artifacts, config) = quick_setup();
        let ctx = crate::engine::RunContext::new(&artifacts, &config, Scale::smoke());
        let seeds = ctx.seeds.child("harness-test");
        let nominal = attacked_records(
            AgentKind::Modular,
            None,
            AttackBudget::ZERO,
            &ctx,
            2,
            &seeds,
        );
        assert_eq!(nominal.len(), 2);
        assert!(nominal.iter().all(|r| r.attack_effort() == 0.0));

        let attacked = attacked_records(
            AgentKind::Modular,
            Some((&artifacts.camera_attacker, SensorKind::Camera)),
            AttackBudget::new(1.0),
            &ctx,
            2,
            &seeds,
        );
        assert!(attacked.iter().any(|r| r.attack_effort() > 0.0));

        // Same namespace, same records: the cell is a pure function of its
        // seed subtree.
        let again = attacked_records(
            AgentKind::Modular,
            None,
            AttackBudget::ZERO,
            &ctx,
            2,
            &seeds,
        );
        assert_eq!(nominal, again);
    }

    /// A fleet-routed context must produce the same records as the serial
    /// path — byte-for-byte for Golden precision — for every routable
    /// agent kind, and non-routable kinds must keep working (silently
    /// staying serial).
    #[test]
    fn fleet_context_matches_serial_records() {
        let (artifacts, config) = quick_setup();
        let serial_ctx = crate::engine::RunContext::new(&artifacts, &config, Scale::smoke());
        let mut fleet_ctx = crate::engine::RunContext::new(&artifacts, &config, Scale::smoke());
        fleet_ctx.fleet = Some(3);
        let seeds = serial_ctx.seeds.child("fleet-test");
        for kind in [AgentKind::E2e, AgentKind::AdvRhoHalf, AgentKind::Modular] {
            let attack = Some((&artifacts.camera_attacker, SensorKind::Camera));
            let serial =
                attacked_records(kind, attack, AttackBudget::new(1.0), &serial_ctx, 4, &seeds);
            let fleet =
                attacked_records(kind, attack, AttackBudget::new(1.0), &fleet_ctx, 4, &seeds);
            assert_eq!(fleet, serial, "{kind:?}");
        }
        // IMU pairing too (per-episode noise reseeding is the tricky bit).
        let attack = Some((&artifacts.imu_attacker, SensorKind::Imu));
        let serial = attacked_records(
            AgentKind::E2e,
            attack,
            AttackBudget::new(0.5),
            &serial_ctx,
            4,
            &seeds,
        );
        let fleet = attacked_records(
            AgentKind::E2e,
            attack,
            AttackBudget::new(0.5),
            &fleet_ctx,
            4,
            &seeds,
        );
        assert_eq!(fleet, serial);
    }

    /// Fast precision must journal under a different cell key than Golden
    /// so `f32` records can never replay into a golden run.
    #[test]
    fn fast_precision_gets_distinct_cell_key() {
        let (artifacts, config) = quick_setup();
        let dir = std::env::temp_dir().join("repro-bench-fleet-key-test");
        let base = crate::engine::RunContext::new(&artifacts, &config, Scale::smoke());
        let journal = std::sync::Arc::new(
            crate::journal::JournalHandle::create(&dir, base.run_header()).unwrap(),
        );
        let mk = |precision| {
            let mut ctx = crate::engine::RunContext::new(&artifacts, &config, Scale::smoke());
            ctx.fleet = Some(2);
            ctx.precision = precision;
            ctx.journal = Some(journal.clone());
            ctx
        };
        let golden_ctx = mk(drive_sim::batch::Precision::Golden);
        let seeds = golden_ctx.seeds.child("key-test");
        let golden = attacked_records(
            AgentKind::E2e,
            None,
            AttackBudget::ZERO,
            &golden_ctx,
            2,
            &seeds,
        );
        assert_eq!(journal.cell_count(), 1);
        // A Fast run against the same journal must NOT replay the golden
        // cell: a distinct key forces a recompute, which journals a second
        // cell. A key collision would short-circuit and leave the count at 1.
        let fast_ctx = mk(drive_sim::batch::Precision::Fast);
        let fast = attacked_records(
            AgentKind::E2e,
            None,
            AttackBudget::ZERO,
            &fast_ctx,
            2,
            &seeds,
        );
        assert_eq!(
            journal.cell_count(),
            2,
            "Fast must journal under its own cell key"
        );
        assert_eq!(golden.len(), fast.len());
    }

    /// A scenario-override cell must (a) journal under its own key, (b)
    /// actually run on the overridden world, and (c) stay byte-identical
    /// between the serial and fleet paths.
    #[test]
    fn scenario_override_keys_and_fleet_parity() {
        use drive_sim::scenario::ScenarioSpec;
        let (artifacts, config) = quick_setup();
        let dir = std::env::temp_dir().join("repro-bench-scn-key-test");
        let _ = std::fs::remove_dir_all(&dir);
        let base = crate::engine::RunContext::new(&artifacts, &config, Scale::smoke());
        let journal = std::sync::Arc::new(
            crate::journal::JournalHandle::create(&dir, base.run_header()).unwrap(),
        );
        let mut ctx = crate::engine::RunContext::new(&artifacts, &config, Scale::smoke());
        ctx.journal = Some(journal.clone());
        let seeds = ctx.seeds.child("scn-test");
        let default_records =
            attacked_records(AgentKind::E2e, None, AttackBudget::ZERO, &ctx, 2, &seeds);
        assert_eq!(journal.cell_count(), 1);
        let spec = ScenarioSpec::on_ramp_merge();
        let cell = ScenarioCell {
            scenario: spec.scenario(),
            fingerprint: spec.fingerprint(),
            faults: None,
        };
        let overridden = attacked_records_in(
            AgentKind::E2e,
            None,
            AttackBudget::ZERO,
            &ctx,
            2,
            &seeds,
            Some(cell),
        );
        assert_eq!(
            journal.cell_count(),
            2,
            "override must journal under its own cell key"
        );
        assert_ne!(
            default_records, overridden,
            "override must actually run on the generated world"
        );
        // Fleet parity on the overridden scenario.
        let mut fleet_ctx = crate::engine::RunContext::new(&artifacts, &config, Scale::smoke());
        fleet_ctx.fleet = Some(3);
        let fleet = attacked_records_in(
            AgentKind::E2e,
            None,
            AttackBudget::ZERO,
            &fleet_ctx,
            2,
            &seeds,
            Some(cell),
        );
        assert_eq!(fleet, overridden);
        // A faulted cell keys differently from the fault-free override and
        // stays off the fleet path (covered by the serial-only routing).
        let schedule = FaultSchedule::benign(0.5, 7);
        let faulted = attacked_records_in(
            AgentKind::E2e,
            None,
            AttackBudget::ZERO,
            &ctx,
            2,
            &seeds,
            Some(ScenarioCell {
                faults: Some(&schedule),
                ..cell
            }),
        );
        assert_eq!(journal.cell_count(), 3);
        assert_eq!(faulted.len(), 2);
    }

    #[test]
    fn scale_presets() {
        assert_eq!(Scale::paper().box_episodes, 30);
        assert!(Scale::smoke().box_episodes < Scale::paper().box_episodes);
    }
}
