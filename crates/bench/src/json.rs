//! Minimal hand-rolled JSON reader/writer shared by the manifest and
//! bench-compare machinery.
//!
//! The workspace has no JSON dependency, so both the emitter helpers and
//! the parser live here. Numbers keep their raw text so 64-bit integers
//! survive without a float round-trip; 64-bit values that may exceed the
//! f64-exact integer range (seeds, hashes, checksums) are conventionally
//! serialized as `"0x..."` hex strings, which [`get_u64`] accepts.

/// Escapes a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value; numbers keep their raw text so 64-bit integers
/// survive without a float round-trip.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    pub(crate) fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    pub(crate) fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

pub(crate) fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field '{key}'"))
}

pub(crate) fn get_str(obj: &[(String, Json)], key: &str) -> Result<String, String> {
    get(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field '{key}' is not a string"))
}

/// Accepts either a JSON number or the `"0x..."` hex-string form used for
/// 64-bit values.
pub(crate) fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    match get(obj, key)? {
        Json::Num(raw) => raw
            .parse::<u64>()
            .map_err(|e| format!("field '{key}': {e}")),
        Json::Str(s) => {
            let hex = s
                .strip_prefix("0x")
                .ok_or_else(|| format!("field '{key}': expected 0x-prefixed hex"))?;
            u64::from_str_radix(hex, 16).map_err(|e| format!("field '{key}': {e}"))
        }
        _ => Err(format!("field '{key}' is not a number")),
    }
}

pub(crate) fn get_f64(obj: &[(String, Json)], key: &str) -> Result<f64, String> {
    match get(obj, key)? {
        Json::Num(raw) => raw
            .parse::<f64>()
            .map_err(|e| format!("field '{key}': {e}")),
        _ => Err(format!("field '{key}' is not a number")),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected a value at byte {start}"));
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    raw.parse::<f64>()
        .map_err(|_| format!("invalid number '{raw}' at byte {start}"))?;
    Ok(Json::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| format!("invalid \\u escape: {e}"))?;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = Json::parse(r#"{"a": [1, "tAb\\\"", {"b": null, "c": true}]}"#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = get(obj, "a").unwrap().as_array().unwrap();
        assert_eq!(arr[0], Json::Num("1".to_string()));
        assert_eq!(arr[1], Json::Str("tAb\\\"".to_string()));
        let inner = arr[2].as_object().unwrap();
        assert_eq!(get(inner, "b").unwrap(), &Json::Null);
        assert_eq!(get(inner, "c").unwrap(), &Json::Bool(true));
    }

    #[test]
    fn hex_strings_and_plain_numbers_both_read_as_u64() {
        let v = Json::parse(r#"{"plain": 42, "hex": "0x00000000000000ff"}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(get_u64(obj, "plain").unwrap(), 42);
        assert_eq!(get_u64(obj, "hex").unwrap(), 255);
        assert!(get_u64(obj, "missing").is_err());
    }
}
