//! Property test for the deterministic parallel executor: the Fig. 4
//! pipeline must emit byte-identical CSV output for any worker count.
//!
//! Artifacts are trained once (quick preset, cached on disk and in a
//! `OnceLock`); per-worker-count CSVs are memoized so the 64 generated
//! cases cost at most one figure run per distinct worker count.

use attack_core::pipeline::{prepare, Artifacts, PipelineConfig};
use proptest::prelude::*;
use repro_bench::engine::RunContext;
use repro_bench::experiments::fig4;
use repro_bench::harness::Scale;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

static SETUP: OnceLock<(Artifacts, PipelineConfig)> = OnceLock::new();
static CSV_CACHE: OnceLock<Mutex<HashMap<usize, String>>> = OnceLock::new();

fn setup() -> &'static (Artifacts, PipelineConfig) {
    SETUP.get_or_init(|| {
        let dir = std::env::temp_dir().join("repro-bench-par-determinism-test");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        (artifacts, config)
    })
}

/// A reduced scale: enough episodes for multi-chunk work distribution,
/// small enough to run many worker counts.
fn scale() -> Scale {
    Scale {
        box_episodes: 2,
        scatter_rounds: 1,
        seed: 10_000,
    }
}

/// The Fig. 4 CSV produced with `workers` par_map worker threads.
fn fig4_csv(workers: usize) -> String {
    let cache = CSV_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().unwrap().get(&workers) {
        return hit.clone();
    }
    let (artifacts, config) = setup();
    // A fresh context per worker count: the memo must not leak results
    // across counts, or the invariance check would compare a cache to
    // itself.
    let csv = drive_par::with_jobs(workers, || {
        let ctx = RunContext::new(artifacts, config, scale());
        fig4::run(&ctx).to_csv().to_csv_string()
    });
    cache.lock().unwrap().insert(workers, csv.clone());
    csv
}

#[test]
fn fig4_csv_identical_for_1_2_and_8_workers() {
    let serial = fig4_csv(1);
    assert!(serial.lines().count() > 1, "csv has header + rows");
    for workers in [2usize, 8] {
        assert_eq!(fig4_csv(workers), serial, "workers={workers}");
    }
}

proptest! {
    /// Any worker count in 1..=8 reproduces the serial CSV byte-for-byte.
    #[test]
    fn fig4_csv_is_worker_count_invariant(workers in any::<u8>()) {
        let workers = 1 + (workers % 8) as usize;
        prop_assert_eq!(fig4_csv(workers), fig4_csv(1));
    }
}
