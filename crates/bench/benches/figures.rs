//! `cargo bench` figure harness: regenerates every table/figure of the
//! paper at smoke scale against quick-trained artifacts, so the full
//! pipeline stays exercised on every bench run. For paper-scale numbers
//! run the binaries (`cargo run --release -p repro-bench --bin repro_all`)
//! against fully trained artifacts.

use attack_core::pipeline::{prepare, PipelineConfig};
use repro_bench::cli::print_experiment;
use repro_bench::Scale;
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join("repro-bench-figures-bench");
    let config = PipelineConfig::quick(&dir);
    let t0 = Instant::now();
    let artifacts = prepare(&config);
    eprintln!(
        "[figures] artifacts ready in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
    for name in [
        "baseline",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "ablations",
    ] {
        let t = Instant::now();
        print_experiment(name, &artifacts, &config, Scale::smoke());
        eprintln!("[figures] {name} in {:.1}s", t.elapsed().as_secs_f64());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
