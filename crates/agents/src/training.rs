//! Training of the end-to-end victim policy.
//!
//! Mirrors Section III-C: the policy is trained "with the knowledge of a
//! privileged agent" — here, behaviour cloning of the modular pipeline's
//! demonstrations — and then refined with SAC on the shaped nominal reward.
//! The SAC stage keeps the best-evaluating checkpoint, so refinement can
//! only improve on the clone.

use crate::driving_env::DrivingEnv;
use crate::e2e::E2eAgent;
use crate::modular::{ModularAgent, ModularConfig};
use crate::runner::run_episodes;
use crate::Agent;
use drive_nn::checkpoint::{self, CheckpointError, Reader};
use drive_nn::gaussian::GaussianPolicy;
use drive_rl::bc::{clone_policy, BcConfig, Demonstrations};
use drive_rl::env::Env;
use drive_rl::replay::{ReplayBuffer, Transition};
use drive_rl::sac::{Sac, SacConfig};
use drive_seed::{fnv1a_64, SeedTree, StreamPos};
use drive_sim::scenario::Scenario;
use drive_sim::sensors::{FeatureConfig, FeatureExtractor};
use drive_sim::world::World;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Configuration of the victim training pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VictimTrainConfig {
    /// Demonstration episodes collected from the modular teacher.
    pub demo_episodes: usize,
    /// Uniform steering noise injected while collecting demonstrations
    /// (teacher labels stay clean), covering recovery states.
    pub demo_noise: f64,
    /// Behaviour-cloning gradient steps.
    pub bc_steps: usize,
    /// SAC environment steps after cloning (0 skips refinement).
    pub sac_steps: usize,
    /// Gradient updates happen every this many environment steps.
    pub update_every: usize,
    /// Hidden sizes of actor and critics.
    pub hidden: Vec<usize>,
    /// Evaluation episodes per checkpoint during refinement.
    pub eval_episodes: usize,
    /// Checkpoint / evaluation period in environment steps.
    pub eval_every: usize,
    /// Master seed.
    pub seed: u64,
    /// Crash-recovery snapshot file for the SAC refinement stage. `None`
    /// disables snapshotting (the BC stage is cheap and always recomputes
    /// deterministically; only the long SAC loop is worth journaling).
    pub snapshot_path: Option<PathBuf>,
    /// Minimum environment steps between refinement snapshots.
    pub snapshot_every: usize,
}

impl Default for VictimTrainConfig {
    fn default() -> Self {
        VictimTrainConfig {
            demo_episodes: 80,
            demo_noise: 0.2,
            bc_steps: 10_000,
            sac_steps: 20_000,
            update_every: 2,
            hidden: vec![128, 128],
            eval_episodes: 5,
            eval_every: 4_000,
            seed: 0,
            snapshot_path: None,
            snapshot_every: 4_000,
        }
    }
}

/// Collects `(stacked features, (nu, gamma))` demonstration pairs from the
/// modular pipeline over jittered episodes.
///
/// `exec_noise` adds uniform noise to the *executed* steering while the
/// stored label stays the teacher's clean command (DART-style noise
/// injection), so the clone sees recovery states instead of only the
/// teacher's narrow on-path distribution. Odd episodes run noise-free.
pub fn collect_demonstrations(
    scenario: &Scenario,
    features: &FeatureConfig,
    episodes: usize,
    base_seed: u64,
    exec_noise: f64,
) -> Demonstrations {
    use drive_sim::vehicle::Actuation;
    let mut demos = Demonstrations::new();
    for e in 0..episodes {
        let mut rng = StdRng::seed_from_u64(base_seed + e as u64);
        let episode = scenario.jittered(&mut rng);
        let mut world = World::new(episode);
        let mut agent = ModularAgent::new(ModularConfig::default(), 1);
        let mut extractor = FeatureExtractor::new(features.clone());
        agent.reset(&world);
        extractor.reset();
        let noisy = e % 2 == 0 && exec_noise > 0.0;
        while !world.is_done() {
            let obs = extractor.observe(&world);
            let a = agent.act(&world);
            demos.push(obs, vec![a.steer as f32, a.thrust as f32]);
            let executed = if noisy {
                Actuation::new(a.steer + rng.gen_range(-exec_noise..=exec_noise), a.thrust)
            } else {
                a
            };
            world.step(executed);
        }
    }
    demos
}

/// Mean nominal return and mean passed-count of a policy over deterministic
/// evaluation episodes.
pub fn evaluate_policy(
    policy: &GaussianPolicy,
    scenario: &Scenario,
    features: &FeatureConfig,
    episodes: usize,
    base_seed: u64,
) -> (f64, f64) {
    let mut agent = E2eAgent::new(policy.clone(), features.clone(), base_seed, true);
    let records = run_episodes(&mut agent, scenario, episodes, base_seed);
    let n = episodes.max(1) as f64;
    let mean_return = records.iter().map(|r| r.nominal_return).sum::<f64>() / n;
    let mean_passed = records.iter().map(|r| r.passed as f64).sum::<f64>() / n;
    (mean_return, mean_passed)
}

/// Trains the end-to-end victim policy: behaviour cloning of the modular
/// teacher followed by best-checkpoint SAC refinement on the shaped reward.
pub fn train_victim(
    scenario: &Scenario,
    features: &FeatureConfig,
    config: &VictimTrainConfig,
) -> GaussianPolicy {
    let mut rng = StdRng::seed_from_u64(SeedTree::root(config.seed).child("victim-bc").seed());
    let demos = collect_demonstrations(
        scenario,
        features,
        config.demo_episodes,
        config.seed,
        config.demo_noise,
    );
    let mut policy = GaussianPolicy::new(features.observation_dim(), &config.hidden, 2, &mut rng);
    clone_policy(
        &mut policy,
        &demos,
        BcConfig {
            steps: config.bc_steps,
            batch_size: 128,
            lr: 1e-3,
        },
        &mut rng,
    );
    if config.sac_steps == 0 {
        return policy;
    }
    refine_with_sac(policy, scenario, features, config)
}

/// Version tag of the victim-refinement snapshot file.
const VICTIM_SNAPSHOT_VERSION: &str = "v1";

/// Mid-refinement state of [`refine_with_sac`]: the learner, the replay
/// buffer, the best-checkpoint pair, and the exact RNG stream position.
/// Like [`drive_rl::snapshot::TrainSnapshot`], it is only taken at episode
/// boundaries so the environment re-derives from the episode seed.
struct VictimSnapshot {
    step: usize,
    episode_seed: u64,
    config_hash: u64,
    best_score: f64,
    rng: StreamPos,
    best: GaussianPolicy,
    sac: Sac,
    buffer: ReplayBuffer,
}

impl VictimSnapshot {
    fn encode(&self) -> String {
        let mut buf = String::new();
        buf.push_str(&format!("victim-sac {VICTIM_SNAPSHOT_VERSION}\n"));
        buf.push_str(&format!(
            "meta {} {} {:016x} {}\n",
            self.step, self.episode_seed, self.config_hash, self.best_score
        ));
        buf.push_str(&format!("rng {}\n", self.rng.to_hex()));
        checkpoint::encode_policy_into(&mut buf, &self.best);
        self.sac.encode_state_into(&mut buf);
        self.buffer.encode_into(&mut buf);
        buf
    }

    fn decode(text: &str, sac_config: SacConfig) -> Result<Self, CheckpointError> {
        let parse_err = CheckpointError::Parse;
        let mut r = Reader::new(text);
        let args = r.expect_tag("victim-sac")?;
        let version = *args
            .first()
            .ok_or_else(|| parse_err("victim-sac tag needs a version".into()))?;
        if version != VICTIM_SNAPSHOT_VERSION {
            return Err(CheckpointError::Version {
                found: version.to_string(),
                expected: VICTIM_SNAPSHOT_VERSION,
            });
        }
        let meta = r.expect_tag("meta")?;
        if meta.len() != 4 {
            return Err(parse_err(
                "meta needs '<step> <episode_seed> <config_hash> <best_score>'".into(),
            ));
        }
        let step: usize = meta[0]
            .parse()
            .map_err(|_| parse_err(format!("bad step '{}'", meta[0])))?;
        let episode_seed: u64 = meta[1]
            .parse()
            .map_err(|_| parse_err(format!("bad episode seed '{}'", meta[1])))?;
        let config_hash = u64::from_str_radix(meta[2], 16)
            .map_err(|_| parse_err(format!("bad config hash '{}'", meta[2])))?;
        let best_score: f64 = meta[3]
            .parse()
            .map_err(|_| parse_err(format!("bad best score '{}'", meta[3])))?;
        let rng_args = r.expect_tag("rng")?;
        let rng = StreamPos::from_hex(
            rng_args
                .first()
                .ok_or_else(|| parse_err("rng tag needs a position".into()))?,
        )
        .map_err(CheckpointError::Parse)?;
        let best = checkpoint::decode_policy_from(&mut r)?;
        let sac = Sac::decode_state_from(&mut r, sac_config)?;
        let buffer = ReplayBuffer::decode_from(&mut r)?;
        Ok(VictimSnapshot {
            step,
            episode_seed,
            config_hash,
            best_score,
            rng,
            best,
            sac,
            buffer,
        })
    }

    fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        checkpoint::save_to_file(path, &self.encode())
    }

    fn load(path: &Path, sac_config: SacConfig) -> Result<Self, CheckpointError> {
        Self::decode(&checkpoint::load_from_file(path)?, sac_config)
    }
}

/// SAC refinement with best-checkpoint selection.
///
/// When [`VictimTrainConfig::snapshot_path`] is set, the loop writes
/// durable crash-recovery snapshots at episode boundaries (at least
/// [`VictimTrainConfig::snapshot_every`] env steps apart) and resumes from
/// a matching snapshot on restart, reproducing the uninterrupted run
/// bit-exactly. The snapshot file is removed when refinement completes.
fn refine_with_sac(
    policy: GaussianPolicy,
    scenario: &Scenario,
    features: &FeatureConfig,
    config: &VictimTrainConfig,
) -> GaussianPolicy {
    let mut rng = StdRng::seed_from_u64(SeedTree::root(config.seed).child("victim-sac").seed());
    let eval_seed = 90_000 + config.seed;
    let mut best = policy.clone();
    let (mut best_score, _) =
        evaluate_policy(&best, scenario, features, config.eval_episodes, eval_seed);

    let sac_config = SacConfig {
        init_alpha: 0.02,
        actor_delay: 1000,
        batch_size: 128,
        ..SacConfig::default()
    };
    let mut sac = Sac::with_actor(policy, &config.hidden, sac_config, &mut rng);
    let mut env = DrivingEnv::new(scenario.clone(), features.clone());
    let mut buffer = ReplayBuffer::new(100_000, env.obs_dim(), env.action_dim());

    // The hash pins a snapshot to this exact training setup; the snapshot
    // path itself is excluded so relocating the run directory does not
    // invalidate an otherwise-identical snapshot.
    let hashed_config = VictimTrainConfig {
        snapshot_path: None,
        ..config.clone()
    };
    let config_hash = fnv1a_64(format!("{hashed_config:?}|{scenario:?}|{features:?}").as_bytes());
    let mut start_step = 0usize;
    let mut last_snapshot_step = 0usize;
    let mut episode_seed = config.seed.wrapping_mul(1000) + 1;
    if let Some(path) = &config.snapshot_path {
        if path.exists() {
            match VictimSnapshot::load(path, sac_config) {
                Ok(snap) if snap.config_hash == config_hash && snap.step <= config.sac_steps => {
                    rng = snap.rng.restore();
                    best = snap.best;
                    best_score = snap.best_score;
                    sac = snap.sac;
                    buffer = snap.buffer;
                    episode_seed = snap.episode_seed;
                    start_step = snap.step;
                    last_snapshot_step = snap.step;
                }
                Ok(_) => eprintln!(
                    "[victim] ignoring snapshot {}: different training setup",
                    path.display()
                ),
                Err(e) => eprintln!(
                    "[victim] ignoring unreadable snapshot {}: {e}",
                    path.display()
                ),
            }
        }
    }
    let mut obs = env.reset(episode_seed);

    for step in start_step..config.sac_steps {
        let action = sac.act(&obs, &mut rng, false);
        let s = env.step(&action);
        buffer.push(Transition {
            obs: std::mem::take(&mut obs),
            action,
            reward: s.reward,
            next_obs: s.obs.clone(),
            terminal: s.done,
        });
        let finished = s.finished();
        obs = s.obs;
        if finished {
            episode_seed += 1;
            obs = env.reset(episode_seed);
        }
        if buffer.len() >= 1000 && step % config.update_every.max(1) == 0 {
            sac.update(&buffer, &mut rng);
        }
        if (step + 1) % config.eval_every == 0 {
            let (score, _) = evaluate_policy(
                &sac.actor,
                scenario,
                features,
                config.eval_episodes,
                eval_seed,
            );
            if score > best_score {
                best_score = score;
                best = sac.actor.clone();
            }
        }
        // Snapshot at episode boundaries only, after this step's RNG draws.
        if finished {
            if let Some(path) = &config.snapshot_path {
                let done = step + 1;
                if done < config.sac_steps
                    && done - last_snapshot_step >= config.snapshot_every.max(1)
                {
                    let snap = VictimSnapshot {
                        step: done,
                        episode_seed,
                        config_hash,
                        best_score,
                        rng: StreamPos::capture(&rng),
                        best: best.clone(),
                        sac: sac.clone(),
                        buffer: buffer.clone(),
                    };
                    match snap.save(path) {
                        Ok(()) => last_snapshot_step = done,
                        Err(e) => {
                            eprintln!("[victim] snapshot write to {} failed: {e}", path.display())
                        }
                    }
                }
            }
        }
    }
    if let Some(path) = &config.snapshot_path {
        let _ = std::fs::remove_file(path);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_features() -> FeatureConfig {
        FeatureConfig::default()
    }

    #[test]
    fn demonstrations_have_consistent_shapes() {
        let scenario = Scenario::default();
        let features = quick_features();
        let demos = collect_demonstrations(&scenario, &features, 2, 0, 0.0);
        // Two full episodes of 180 steps each.
        assert_eq!(demos.len(), 2 * scenario.max_steps);
        let mut rng = StdRng::seed_from_u64(0);
        let (o, a) = demos.sample_batch(4, &mut rng);
        assert_eq!(o.cols(), features.observation_dim());
        assert_eq!(a.cols(), 2);
    }

    #[test]
    fn bc_clone_drives_respectably() {
        // Cloning alone should reproduce most of the teacher's behaviour:
        // positive return and several NPCs passed, no barrier crash.
        let scenario = Scenario::default();
        let features = quick_features();
        let config = VictimTrainConfig {
            demo_episodes: 40,
            bc_steps: 6000,
            sac_steps: 0,
            ..VictimTrainConfig::default()
        };
        let policy = train_victim(&scenario, &features, &config);
        let (ret, passed) = evaluate_policy(&policy, &scenario, &features, 5, 777);
        assert!(ret > 100.0, "mean return {ret}");
        assert!(passed >= 4.0, "mean passed {passed}");
    }

    #[test]
    fn victim_snapshot_encode_decode_round_trips() {
        let features = quick_features();
        let mut rng = StdRng::seed_from_u64(9);
        let sac_config = SacConfig {
            batch_size: 8,
            ..SacConfig::default()
        };
        let policy = GaussianPolicy::new(features.observation_dim(), &[8], 2, &mut rng);
        let sac = Sac::with_actor(policy.clone(), &[8], sac_config, &mut rng);
        let mut buffer = ReplayBuffer::new(64, features.observation_dim(), 2);
        buffer.push(Transition {
            obs: vec![0.1; features.observation_dim()],
            action: vec![0.2, -0.3],
            reward: 1.5,
            next_obs: vec![0.2; features.observation_dim()],
            terminal: false,
        });
        let snap = VictimSnapshot {
            step: 777,
            episode_seed: 12,
            config_hash: 0xabcd,
            best_score: 321.5,
            rng: StreamPos::capture(&rng),
            best: policy,
            sac,
            buffer,
        };
        let back = VictimSnapshot::decode(&snap.encode(), sac_config).expect("round trip");
        assert_eq!(back.step, snap.step);
        assert_eq!(back.episode_seed, snap.episode_seed);
        assert_eq!(back.config_hash, snap.config_hash);
        assert_eq!(back.best_score, snap.best_score);
        assert_eq!(back.rng, snap.rng);
        assert_eq!(back.buffer.len(), snap.buffer.len());
        let obs = drive_nn::mat::Mat::from_row(&vec![0.05; features.observation_dim()]);
        assert_eq!(back.best.mean_action(&obs), snap.best.mean_action(&obs));
        // A stale version is a typed error, not garbage weights.
        let tampered = snap.encode().replacen("victim-sac v1", "victim-sac v0", 1);
        assert!(matches!(
            VictimSnapshot::decode(&tampered, sac_config),
            Err(CheckpointError::Version { .. })
        ));
    }

    #[test]
    fn refinement_snapshots_do_not_change_results_and_clean_up() {
        // The same training run with and without snapshotting must produce
        // the identical policy (snapshot writes draw no randomness), and a
        // completed run must remove its snapshot file.
        let scenario = Scenario::default();
        let features = quick_features();
        let dir = std::env::temp_dir().join("drive-agents-victim-snap-test");
        let _ = std::fs::remove_dir_all(&dir);
        let base = VictimTrainConfig {
            demo_episodes: 4,
            bc_steps: 200,
            sac_steps: 1400,
            update_every: 8,
            hidden: vec![16],
            eval_episodes: 2,
            eval_every: 700,
            seed: 3,
            ..VictimTrainConfig::default()
        };
        let plain = train_victim(&scenario, &features, &base);
        let snap_path = dir.join("victim.snap");
        let snapped_cfg = VictimTrainConfig {
            snapshot_path: Some(snap_path.clone()),
            snapshot_every: 400,
            ..base.clone()
        };
        let snapped = train_victim(&scenario, &features, &snapped_cfg);
        assert!(
            !snap_path.exists(),
            "completed refinement must remove its snapshot"
        );
        let obs = drive_nn::mat::Mat::from_row(&vec![0.1; features.observation_dim()]);
        assert_eq!(plain.mean_action(&obs), snapped.mean_action(&obs));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evaluate_policy_is_deterministic() {
        let scenario = Scenario::default();
        let features = quick_features();
        let mut rng = StdRng::seed_from_u64(5);
        let policy = GaussianPolicy::new(features.observation_dim(), &[16], 2, &mut rng);
        let a = evaluate_policy(&policy, &scenario, &features, 3, 11);
        let b = evaluate_policy(&policy, &scenario, &features, 3, 11);
        assert_eq!(a, b);
    }
}
