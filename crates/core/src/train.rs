//! Training of the attack policies (Sections IV-D and IV-E).
//!
//! The camera attacker is behaviour-cloned from the geometric oracle and
//! then refined with SAC on the adversarial reward; the IMU attacker is
//! behaviour-cloned from the *camera teacher* and refined with the
//! teacher-augmented reward `R_adv + p_se` — the paper's
//! learning-from-teacher structure. Both refinements keep the
//! best-evaluating checkpoint (mean cumulative adversarial reward).

use crate::adv_reward::AdvReward;
use crate::attack_env::{AttackEnv, Teacher};
use crate::budget::AttackBudget;
use crate::eval::run_attacked_episodes;
use crate::learned::LearnedAttacker;
use crate::oracle::OracleAttacker;
use crate::sensor::{AttackerSensor, SensorKind};
use drive_agents::Agent;
use drive_nn::gaussian::GaussianPolicy;
use drive_rl::bc::{clone_policy, BcConfig, Demonstrations};
use drive_rl::env::Env;
use drive_rl::replay::{ReplayBuffer, Transition};
use drive_rl::sac::{Sac, SacConfig};
use drive_seed::SeedTree;
use drive_sim::scenario::Scenario;
use drive_sim::sensors::{FeatureConfig, ImuConfig};
use drive_sim::vehicle::Actuation;
use drive_sim::world::World;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A source of fresh victim agents (one per training/eval context).
pub type VictimBuilder<'a> = &'a dyn Fn() -> Box<dyn Agent>;

/// Configuration of attacker training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackTrainConfig {
    /// Demonstration episodes (oracle for camera, camera for IMU).
    pub bc_episodes: usize,
    /// Behaviour-cloning gradient steps.
    pub bc_steps: usize,
    /// SAC environment steps after cloning (0 skips refinement).
    pub sac_steps: usize,
    /// Gradient updates happen every this many environment steps.
    pub update_every: usize,
    /// Hidden sizes of actor and critics.
    pub hidden: Vec<usize>,
    /// Evaluation episodes per refinement checkpoint.
    pub eval_episodes: usize,
    /// Checkpoint / evaluation period in environment steps.
    pub eval_every: usize,
    /// Training budget (the paper trains at the mechanical limit, 1.0).
    pub budget: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for AttackTrainConfig {
    fn default() -> Self {
        AttackTrainConfig {
            bc_episodes: 40,
            bc_steps: 6000,
            sac_steps: 15_000,
            update_every: 2,
            hidden: vec![128, 128],
            eval_episodes: 8,
            eval_every: 3_000,
            budget: 1.0,
            seed: 0,
        }
    }
}

/// Collects `(camera obs, oracle raw action)` pairs while the oracle
/// attacks the victim.
pub fn collect_oracle_demos(
    victim: VictimBuilder<'_>,
    scenario: &Scenario,
    features: &FeatureConfig,
    episodes: usize,
    base_seed: u64,
    budget: AttackBudget,
) -> Demonstrations {
    let mut demos = Demonstrations::new();
    let oracle = OracleAttacker::new(budget);
    for e in 0..episodes {
        let mut rng = StdRng::seed_from_u64(base_seed + e as u64);
        let episode = scenario.jittered(&mut rng);
        let mut world = World::new(episode);
        let mut agent = victim();
        let mut sensor = AttackerSensor::camera(features.clone());
        agent.reset(&world);
        sensor.reset();
        while !world.is_done() {
            let obs = sensor.observe(&world);
            let raw = oracle.raw_action(&world);
            demos.push(obs, vec![raw as f32]);
            let delta = budget.scale(raw);
            let a = agent.act(&world);
            world.step(Actuation::new(a.steer + delta, a.thrust));
        }
    }
    demos
}

/// Collects `(IMU obs, camera-teacher raw action)` pairs while the teacher
/// attacks the victim — the supervised half of learning-from-teacher.
#[allow(clippy::too_many_arguments)]
pub fn collect_teacher_demos(
    victim: VictimBuilder<'_>,
    teacher: &GaussianPolicy,
    scenario: &Scenario,
    features: &FeatureConfig,
    imu: &ImuConfig,
    episodes: usize,
    base_seed: u64,
    budget: AttackBudget,
) -> Demonstrations {
    let mut demos = Demonstrations::new();
    for e in 0..episodes {
        let mut rng = StdRng::seed_from_u64(base_seed + e as u64);
        let episode = scenario.jittered(&mut rng);
        let mut world = World::new(episode);
        let mut agent = victim();
        let mut cam = AttackerSensor::camera(features.clone());
        let mut imu_sensor = AttackerSensor::imu(
            imu.clone(),
            SeedTree::root(base_seed)
                .child("imu-sensor")
                .child(e)
                .seed(),
        );
        let mut trng = StdRng::seed_from_u64(0);
        agent.reset(&world);
        cam.reset();
        imu_sensor.reset();
        while !world.is_done() {
            let cam_obs = cam.observe(&world);
            let imu_obs = imu_sensor.observe(&world);
            let raw = teacher.act(&cam_obs, &mut trng, true)[0];
            demos.push(imu_obs, vec![raw]);
            let delta = budget.scale(raw as f64);
            let a = agent.act(&world);
            world.step(Actuation::new(a.steer + delta, a.thrust));
        }
    }
    demos
}

/// Mean cumulative adversarial reward and side-collision success rate of an
/// attack policy over deterministic evaluation episodes.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_attack_policy(
    policy: &GaussianPolicy,
    victim: VictimBuilder<'_>,
    scenario: &Scenario,
    sensor: SensorKind,
    features: &FeatureConfig,
    imu: &ImuConfig,
    budget: AttackBudget,
    episodes: usize,
    base_seed: u64,
) -> (f64, f64) {
    let adv = AdvReward::default();
    let mut agent = victim();
    let records = run_attacked_episodes(
        agent.as_mut(),
        |seed| {
            let s = match sensor {
                SensorKind::Camera => AttackerSensor::camera(features.clone()),
                SensorKind::Imu => AttackerSensor::imu(imu.clone(), seed),
            };
            Some(LearnedAttacker::new(policy.clone(), s, budget, seed, true))
        },
        &adv,
        scenario,
        episodes,
        base_seed,
    );
    let n = episodes.max(1) as f64;
    let mean_adv = records.iter().map(|r| r.adv_return).sum::<f64>() / n;
    let success = records.iter().filter(|r| r.side_collision()).count() as f64 / n;
    (mean_adv, success)
}

/// Trains the camera-based attack policy against a victim.
pub fn train_camera_attacker(
    victim: VictimBuilder<'_>,
    scenario: &Scenario,
    features: &FeatureConfig,
    config: &AttackTrainConfig,
) -> GaussianPolicy {
    let mut rng = StdRng::seed_from_u64(SeedTree::root(config.seed).child("camera-bc").seed());
    let budget = AttackBudget::new(config.budget);
    let demos = collect_oracle_demos(
        victim,
        scenario,
        features,
        config.bc_episodes,
        config.seed,
        budget,
    );
    let mut policy = GaussianPolicy::new(features.observation_dim(), &config.hidden, 1, &mut rng);
    clone_policy(
        &mut policy,
        &demos,
        BcConfig {
            steps: config.bc_steps,
            batch_size: 128,
            lr: 1e-3,
        },
        &mut rng,
    );
    if config.sac_steps == 0 {
        return policy;
    }
    let sensor = AttackerSensor::camera(features.clone());
    refine_attacker(
        policy,
        None,
        sensor,
        victim,
        scenario,
        features,
        &ImuConfig::default(),
        config,
    )
}

/// Trains the IMU-based attack policy with learning-from-teacher.
pub fn train_imu_attacker(
    victim: VictimBuilder<'_>,
    teacher: &GaussianPolicy,
    scenario: &Scenario,
    features: &FeatureConfig,
    imu: &ImuConfig,
    config: &AttackTrainConfig,
) -> GaussianPolicy {
    let mut rng = StdRng::seed_from_u64(SeedTree::root(config.seed).child("imu-bc").seed());
    let budget = AttackBudget::new(config.budget);
    let demos = collect_teacher_demos(
        victim,
        teacher,
        scenario,
        features,
        imu,
        config.bc_episodes,
        config.seed,
        budget,
    );
    let mut policy = GaussianPolicy::new(imu.observation_dim(), &config.hidden, 1, &mut rng);
    clone_policy(
        &mut policy,
        &demos,
        BcConfig {
            steps: config.bc_steps,
            batch_size: 128,
            lr: 1e-3,
        },
        &mut rng,
    );
    if config.sac_steps == 0 {
        return policy;
    }
    let sensor = AttackerSensor::imu(
        imu.clone(),
        SeedTree::root(config.seed)
            .child("imu-teacher-sensor")
            .seed(),
    );
    let teacher = Teacher::new(teacher.clone(), features.clone());
    refine_attacker(
        policy,
        Some(teacher),
        sensor,
        victim,
        scenario,
        features,
        imu,
        config,
    )
}

/// SAC refinement on the attack environment with best-checkpoint selection.
#[allow(clippy::too_many_arguments)]
fn refine_attacker(
    policy: GaussianPolicy,
    teacher: Option<Teacher>,
    sensor: AttackerSensor,
    victim: VictimBuilder<'_>,
    scenario: &Scenario,
    features: &FeatureConfig,
    imu: &ImuConfig,
    config: &AttackTrainConfig,
) -> GaussianPolicy {
    let mut rng = StdRng::seed_from_u64(SeedTree::root(config.seed).child("attack-sac").seed());
    let budget = AttackBudget::new(config.budget);
    let kind = sensor.kind();
    let eval_seed = 70_000 + config.seed;
    let eval = |p: &GaussianPolicy| {
        evaluate_attack_policy(
            p,
            victim,
            scenario,
            kind,
            features,
            imu,
            budget,
            config.eval_episodes,
            eval_seed,
        )
        .0
    };
    let mut best = policy.clone();
    let mut best_score = eval(&best);

    let sac_config = SacConfig {
        init_alpha: 0.05,
        batch_size: 128,
        ..SacConfig::default()
    };
    let mut sac = Sac::with_actor(policy, &config.hidden, sac_config, &mut rng);
    let mut env = AttackEnv::new(
        scenario.clone(),
        victim(),
        sensor,
        budget,
        AdvReward::default(),
    );
    env.set_teacher(teacher);
    let mut buffer = ReplayBuffer::new(100_000, env.obs_dim(), env.action_dim());

    let mut episode_seed = config.seed.wrapping_mul(7777) + 1;
    let mut obs = env.reset(episode_seed);
    for step in 0..config.sac_steps {
        let action = sac.act(&obs, &mut rng, false);
        let s = env.step(&action);
        buffer.push(Transition {
            obs: std::mem::take(&mut obs),
            action,
            reward: s.reward,
            next_obs: s.obs.clone(),
            terminal: s.done,
        });
        let finished = s.finished();
        obs = s.obs;
        if finished {
            episode_seed += 1;
            obs = env.reset(episode_seed);
        }
        if buffer.len() >= 1000 && step % config.update_every.max(1) == 0 {
            sac.update(&buffer, &mut rng);
        }
        if (step + 1) % config.eval_every == 0 {
            let score = eval(&sac.actor);
            if score > best_score {
                best_score = score;
                best = sac.actor.clone();
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_agents::modular::{ModularAgent, ModularConfig};

    fn modular_victim() -> Box<dyn Agent> {
        Box::new(ModularAgent::new(ModularConfig::default(), 1))
    }

    #[test]
    fn oracle_demos_have_nonzero_labels() {
        let scenario = Scenario::default();
        let features = FeatureConfig::default();
        let demos = collect_oracle_demos(
            &modular_victim,
            &scenario,
            &features,
            2,
            0,
            AttackBudget::new(1.0),
        );
        assert!(demos.len() > 50, "episodes should produce many steps");
        // Sample labels: at least some steps are attack-active (non-zero).
        let mut rng = StdRng::seed_from_u64(0);
        let (_, a) = demos.sample_batch(256, &mut rng);
        let active = a.data().iter().filter(|v| v.abs() > 0.5).count();
        assert!(active > 0, "oracle must be active in some sampled steps");
    }

    #[test]
    fn camera_bc_attacker_learns_to_collide() {
        // BC from the oracle alone (no SAC) should already produce side
        // collisions against the modular victim.
        let scenario = Scenario::default();
        let features = FeatureConfig::default();
        let config = AttackTrainConfig {
            bc_episodes: 10,
            bc_steps: 2500,
            sac_steps: 0,
            ..AttackTrainConfig::default()
        };
        let policy = train_camera_attacker(&modular_victim, &scenario, &features, &config);
        let (mean_adv, success) = evaluate_attack_policy(
            &policy,
            &modular_victim,
            &scenario,
            SensorKind::Camera,
            &features,
            &ImuConfig::default(),
            AttackBudget::new(1.0),
            10,
            500,
        );
        assert!(success >= 0.3, "success rate {success}");
        assert!(mean_adv > 0.0, "mean adversarial return {mean_adv}");
    }

    #[test]
    fn teacher_demos_align_with_imu_obs_dim() {
        let scenario = Scenario::default();
        let features = FeatureConfig::default();
        let imu = ImuConfig::default();
        let mut rng = StdRng::seed_from_u64(0);
        let teacher = GaussianPolicy::new(features.observation_dim(), &[8], 1, &mut rng);
        let demos = collect_teacher_demos(
            &modular_victim,
            &teacher,
            &scenario,
            &features,
            &imu,
            1,
            0,
            AttackBudget::new(1.0),
        );
        assert!(!demos.is_empty());
        let (o, a) = demos.sample_batch(4, &mut rng);
        assert_eq!(o.cols(), imu.observation_dim());
        assert_eq!(a.cols(), 1);
    }
}
