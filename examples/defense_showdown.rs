//! Compare the original end-to-end agent against the PNN-defended agent
//! under a full-budget camera attack, using the trained checkpoints under
//! `artifacts/` (run `cargo run --release -p repro-bench --bin prepare`
//! first; this example falls back to the oracle attacker against the
//! modular agent when no artifacts exist).
//!
//! ```sh
//! cargo run --release --example defense_showdown
//! ```

use ad_action_attacks::attacks::defense::SimplexSwitcher;
use ad_action_attacks::attacks::learned::LearnedAttacker;
use ad_action_attacks::attacks::sensor::AttackerSensor;
use ad_action_attacks::nn::checkpoint;
use ad_action_attacks::prelude::*;

fn summarize(label: &str, records: &[EpisodeRecord]) {
    let s = CellSummary::from_records(records);
    println!(
        "{label:<24} success {:>4.0}%  nominal {:>7.1}  passed {:.2}",
        s.success_rate * 100.0,
        s.nominal.mean,
        s.mean_passed
    );
}

fn main() {
    let scenario = Scenario::default();
    let adv = AdvReward::default();
    let budget = AttackBudget::new(1.0);
    let episodes = 15;

    let victim = checkpoint::load_from_file("artifacts/victim_e2e.ckpt")
        .ok()
        .and_then(|t| checkpoint::decode_policy(&t).ok());
    let attacker = checkpoint::load_from_file("artifacts/attacker_camera.ckpt")
        .ok()
        .and_then(|t| checkpoint::decode_policy(&t).ok());
    let pnn = checkpoint::load_from_file("artifacts/pnn_defense.ckpt")
        .ok()
        .and_then(|t| checkpoint::decode_pnn(&t).ok());

    match (victim, attacker, pnn) {
        (Some(victim), Some(attacker), Some(pnn)) => {
            let features = FeatureConfig::default();
            println!("full-budget camera attack, {episodes} episodes each:\n");

            let mut ori = E2eAgent::new(victim, features.clone(), 0, true);
            let records = run_attacked_episodes(
                &mut ori,
                |seed| {
                    Some(LearnedAttacker::new(
                        attacker.clone(),
                        AttackerSensor::camera(features.clone()),
                        budget,
                        seed,
                        true,
                    ))
                },
                &adv,
                &scenario,
                episodes,
                31_000,
            );
            summarize("pi_ori (undefended)", &records);

            let switcher = SimplexSwitcher::new(pnn, 0.2, budget.epsilon());
            let mut defended = E2eAgent::new(switcher, features.clone(), 0, true);
            let records = run_attacked_episodes(
                &mut defended,
                |seed| {
                    Some(LearnedAttacker::new(
                        attacker.clone(),
                        AttackerSensor::camera(features.clone()),
                        budget,
                        seed,
                        true,
                    ))
                },
                &adv,
                &scenario,
                episodes,
                31_000,
            );
            summarize("pi_pnn (sigma=0.2)", &records);
        }
        _ => {
            println!("no trained artifacts found under artifacts/ — falling back to");
            println!("the oracle attacker against the modular pipeline.\n");
            let mut agent = ModularAgent::new(ModularConfig::default(), 1);
            let records = run_attacked_episodes(
                &mut agent,
                |_| Some(OracleAttacker::new(budget)),
                &adv,
                &scenario,
                episodes,
                31_000,
            );
            summarize("modular vs oracle", &records);
            println!("\nrun `cargo run --release -p repro-bench --bin prepare` for the full cast.");
        }
    }
}
