//! Progressive neural network (PNN) policy: a frozen base column plus a
//! trainable second column with lateral connections.
//!
//! Following Rusu et al. (2016) and Section VI-B of the paper, the first
//! column is the original driving policy and stays frozen; the second column
//! receives, at each layer `i >= 1`, a lateral projection of the base
//! column's hidden activation `h1_{i-1}` in addition to its own `h2_{i-1}`:
//!
//! ```text
//! h2_i = f( W2_i h2_{i-1} + U_i h1_{i-1} + b_i )
//! ```
//!
//! With the laterals zero-initialized and the column weights copied from the
//! base, the PNN starts out *exactly* equivalent to the base policy and only
//! then adapts to adversarial experience — the property that defeats
//! catastrophic forgetting.

use crate::gaussian::{head_backward, randn_mat, sample_head, GaussianPolicy, HeadSample};
use crate::linear::Linear;
use crate::mat::Mat;
use crate::mlp::MlpCache;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How to initialize the second column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PnnInit {
    /// Copy the base column's weights and zero the laterals: the PNN starts
    /// as an exact functional copy of the base policy.
    CopyBase,
    /// Fresh random column and laterals.
    Random,
}

/// Two-column progressive policy with a tanh-Gaussian head on column 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PnnPolicy {
    base: GaussianPolicy,
    column: Vec<Linear>,
    laterals: Vec<Linear>,
    action_dim: usize,
}

/// Forward intermediates of a PNN pass.
#[derive(Debug, Clone)]
pub struct PnnCache {
    input: Mat,
    base: MlpCache,
    post2: Vec<Mat>,
}

impl PnnCache {
    /// Raw column-2 output `(mean | log_std)`.
    pub fn output(&self) -> &Mat {
        self.post2.last().expect("column is non-empty")
    }
}

/// Sample cache pairing the forward intermediates with the head sample.
#[derive(Debug, Clone)]
pub struct PnnSampleCache {
    forward: PnnCache,
    /// The head sample (actions, log-probs, intermediates).
    pub head: HeadSample,
}

impl PnnSampleCache {
    /// Sampled actions.
    pub fn actions(&self) -> &Mat {
        &self.head.actions
    }

    /// Per-sample log-probabilities.
    pub fn log_prob(&self) -> &[f32] {
        &self.head.log_prob
    }
}

impl PnnPolicy {
    /// Wraps a frozen base policy with a new trainable column.
    pub fn new<R: Rng>(base: GaussianPolicy, init: PnnInit, rng: &mut R) -> Self {
        let action_dim = base.action_dim();
        let layers = base.trunk().layers();
        let column: Vec<Linear> = match init {
            PnnInit::CopyBase => layers.to_vec(),
            PnnInit::Random => layers
                .iter()
                .map(|l| Linear::new(l.in_dim(), l.out_dim(), rng))
                .collect(),
        };
        let mut laterals: Vec<Linear> = layers
            .windows(2)
            .map(|w| Linear::new(w[0].out_dim(), w[1].out_dim(), rng))
            .collect();
        if init == PnnInit::CopyBase {
            for lat in &mut laterals {
                lat.w.map_inplace(|_| 0.0);
                lat.b.iter_mut().for_each(|b| *b = 0.0);
            }
        }
        PnnPolicy {
            base,
            column,
            laterals,
            action_dim,
        }
    }

    /// The frozen base policy (column 1).
    pub fn base(&self) -> &GaussianPolicy {
        &self.base
    }

    /// Observation dimensionality.
    pub fn obs_dim(&self) -> usize {
        self.base.obs_dim()
    }

    /// Action dimensionality.
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// Forward pass through both columns, caching intermediates.
    pub fn forward_cached(&self, obs: &Mat) -> PnnCache {
        let base = self.base.trunk().forward_cached(obs);
        let n = self.column.len();
        let mut post2 = Vec::with_capacity(n);
        let mut h = obs.clone();
        for i in 0..n {
            let mut z = self.column[i].forward(&h);
            if i >= 1 {
                z.add_assign(&self.laterals[i - 1].forward(&base.hidden()[i - 1]));
            }
            let act = self.base.trunk().activation(i);
            h = act.forward(&z);
            post2.push(h.clone());
        }
        PnnCache {
            input: obs.clone(),
            base,
            post2,
        }
    }

    /// Raw column-2 output without caching.
    pub fn forward(&self, obs: &Mat) -> Mat {
        let mut cache = self.forward_cached(obs);
        cache.post2.pop().expect("column is non-empty")
    }

    /// Deterministic action `tanh(mean)`.
    pub fn mean_action(&self, obs: &Mat) -> Mat {
        let raw = self.forward_cached(obs);
        let (mut mean, _) = raw.output().split_cols(self.action_dim);
        mean.map_inplace(f32::tanh);
        mean
    }

    /// Samples actions with reparameterization.
    pub fn sample<R: Rng>(&self, obs: &Mat, rng: &mut R) -> PnnSampleCache {
        let noise = randn_mat(obs.rows(), self.action_dim, rng);
        self.sample_with_noise(obs, noise)
    }

    /// Samples with caller-provided noise.
    pub fn sample_with_noise(&self, obs: &Mat, noise: Mat) -> PnnSampleCache {
        let forward = self.forward_cached(obs);
        let head = sample_head(forward.output(), self.action_dim, noise);
        PnnSampleCache { forward, head }
    }

    /// Backpropagates action / log-prob gradients into the **trainable**
    /// parameters (column 2 and laterals). The base column is frozen: no
    /// gradients are accumulated there.
    pub fn backward_sample(
        &mut self,
        cache: &PnnSampleCache,
        grad_action: &Mat,
        grad_logp: &[f32],
    ) {
        let grad_raw = head_backward(&cache.head, grad_action, grad_logp);
        self.backward_raw(&cache.forward, &grad_raw);
    }

    /// Backpropagates a gradient on the raw column-2 output.
    pub fn backward_raw(&mut self, cache: &PnnCache, grad_out: &Mat) {
        let n = self.column.len();
        assert_eq!(cache.post2.len(), n, "cache/column depth mismatch");
        let mut g = grad_out.clone();
        for i in (0..n).rev() {
            let act = self.base.trunk().activation(i);
            g = act.backward(&cache.post2[i], &g);
            if i >= 1 {
                // Lateral branch: gradient into the adapter parameters; the
                // base column is frozen so its own gradient is discarded.
                let _ = self.laterals[i - 1].backward(&cache.base.hidden()[i - 1], &g);
            }
            let input = if i == 0 {
                &cache.input
            } else {
                &cache.post2[i - 1]
            };
            g = self.column[i].backward(input, &g);
        }
    }

    /// Clears gradients of all trainable parameters.
    pub fn zero_grad(&mut self) {
        for l in &mut self.column {
            l.zero_grad();
        }
        for l in &mut self.laterals {
            l.zero_grad();
        }
    }

    /// Visits trainable `(params, grads)` slices (column 2, then laterals).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for l in &mut self.column {
            l.visit_params(f);
        }
        for l in &mut self.laterals {
            l.visit_params(f);
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.column.iter().map(Linear::param_count).sum::<usize>()
            + self.laterals.iter().map(Linear::param_count).sum::<usize>()
    }

    /// The trainable parts `(column, laterals)` — used by checkpointing.
    pub fn parts(&self) -> (&[Linear], &[Linear]) {
        (&self.column, &self.laterals)
    }

    /// Replaces the trainable parts wholesale (checkpoint loading).
    ///
    /// # Errors
    ///
    /// Returns a description of the first shape mismatch.
    pub fn set_parts(&mut self, column: Vec<Linear>, laterals: Vec<Linear>) -> Result<(), String> {
        if column.len() != self.column.len() {
            return Err(format!(
                "column depth {} != expected {}",
                column.len(),
                self.column.len()
            ));
        }
        if laterals.len() != self.laterals.len() {
            return Err(format!(
                "lateral count {} != expected {}",
                laterals.len(),
                self.laterals.len()
            ));
        }
        for (i, (new, old)) in column.iter().zip(&self.column).enumerate() {
            if new.in_dim() != old.in_dim() || new.out_dim() != old.out_dim() {
                return Err(format!("column layer {i} shape mismatch"));
            }
        }
        for (i, (new, old)) in laterals.iter().zip(&self.laterals).enumerate() {
            if new.in_dim() != old.in_dim() || new.out_dim() != old.out_dim() {
                return Err(format!("lateral {i} shape mismatch"));
            }
        }
        self.column = column;
        self.laterals = laterals;
        Ok(())
    }

    /// Convenience: act on a single observation through column 2.
    pub fn act<R: Rng>(&self, obs: &[f32], rng: &mut R, deterministic: bool) -> Vec<f32> {
        let m = Mat::from_row(obs);
        if deterministic {
            self.mean_action(&m).row(0).to_vec()
        } else {
            self.sample(&m, rng).head.actions.row(0).to_vec()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base() -> GaussianPolicy {
        let mut rng = StdRng::seed_from_u64(21);
        GaussianPolicy::new(5, &[12, 12], 2, &mut rng)
    }

    #[test]
    fn copy_base_init_is_functionally_identical() {
        let b = base();
        let mut rng = StdRng::seed_from_u64(1);
        let pnn = PnnPolicy::new(b.clone(), PnnInit::CopyBase, &mut rng);
        let obs = Mat::from_vec(3, 5, (0..15).map(|i| (i as f32) * 0.1 - 0.7).collect());
        assert_eq!(pnn.mean_action(&obs), b.mean_action(&obs));
        // Same noise → same sample.
        let noise = randn_mat(3, 2, &mut rng);
        let s1 = pnn.sample_with_noise(&obs, noise.clone());
        let s2 = b.sample_with_noise(&obs, noise);
        assert_eq!(s1.actions(), s2.actions());
        assert_eq!(s1.log_prob(), s2.log_prob());
    }

    #[test]
    fn random_init_differs_from_base() {
        let b = base();
        let mut rng = StdRng::seed_from_u64(2);
        let pnn = PnnPolicy::new(b.clone(), PnnInit::Random, &mut rng);
        let obs = Mat::from_vec(1, 5, vec![0.1; 5]);
        assert_ne!(pnn.mean_action(&obs), b.mean_action(&obs));
    }

    #[test]
    fn training_column_leaves_base_untouched() {
        let b = base();
        let mut rng = StdRng::seed_from_u64(3);
        let mut pnn = PnnPolicy::new(b.clone(), PnnInit::CopyBase, &mut rng);
        let obs = Mat::from_vec(4, 5, (0..20).map(|i| (i as f32 * 0.07).sin()).collect());
        // A few gradient steps pushing actions toward +1.
        let mut adam = crate::adam::Adam::with_lr(0.01);
        for _ in 0..20 {
            let noise = randn_mat(4, 2, &mut rng);
            let s = pnn.sample_with_noise(&obs, noise);
            let mut ga = Mat::zeros(4, 2);
            for b_ in 0..4 {
                for i in 0..2 {
                    ga.set(b_, i, s.actions().get(b_, i) - 1.0);
                }
            }
            pnn.zero_grad();
            pnn.backward_sample(&s, &ga, &[0.0; 4]);
            adam.step(|f| pnn.visit_params(f));
        }
        // Base column weights unchanged.
        let b_obs = Mat::from_row(&[0.2, 0.1, -0.3, 0.4, 0.0]);
        assert_eq!(pnn.base().mean_action(&b_obs), b.mean_action(&b_obs));
        // Column 2 has moved.
        assert_ne!(pnn.mean_action(&b_obs), b.mean_action(&b_obs));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let b = base();
        let mut rng = StdRng::seed_from_u64(4);
        let mut pnn = PnnPolicy::new(b, PnnInit::Random, &mut rng);
        let obs = Mat::from_vec(2, 5, (0..10).map(|i| (i as f32 * 0.3).cos()).collect());
        // Loss = sum of raw outputs.
        let cache = pnn.forward_cached(&obs);
        let grad_out = Mat::from_vec(2, 4, vec![1.0; 8]);
        pnn.zero_grad();
        pnn.backward_raw(&cache, &grad_out);

        let loss = |p: &PnnPolicy| p.forward_cached(&obs).output().data().iter().sum::<f32>();
        let eps = 1e-2f32;
        // Column weight check.
        for layer_idx in [0usize, 2] {
            let mut pp = pnn.clone();
            let v = pp.column[layer_idx].w.get(0, 0);
            pp.column[layer_idx].w.set(0, 0, v + eps);
            let up = loss(&pp);
            pp.column[layer_idx].w.set(0, 0, v - eps);
            let down = loss(&pp);
            let fd = (up - down) / (2.0 * eps);
            let got = pnn.column[layer_idx].grad_w.get(0, 0);
            assert!(
                (fd - got).abs() < 0.05 * (1.0 + fd.abs()),
                "column[{layer_idx}] fd {fd} vs {got}"
            );
        }
        // Lateral weight check.
        for lat_idx in [0usize, 1] {
            let mut pp = pnn.clone();
            let v = pp.laterals[lat_idx].w.get(0, 0);
            pp.laterals[lat_idx].w.set(0, 0, v + eps);
            let up = loss(&pp);
            pp.laterals[lat_idx].w.set(0, 0, v - eps);
            let down = loss(&pp);
            let fd = (up - down) / (2.0 * eps);
            let got = pnn.laterals[lat_idx].grad_w.get(0, 0);
            assert!(
                (fd - got).abs() < 0.05 * (1.0 + fd.abs()),
                "lateral[{lat_idx}] fd {fd} vs {got}"
            );
        }
    }

    #[test]
    fn visit_params_excludes_base() {
        let b = base();
        let base_params = b.trunk().param_count();
        let mut rng = StdRng::seed_from_u64(5);
        let mut pnn = PnnPolicy::new(b, PnnInit::CopyBase, &mut rng);
        let mut count = 0;
        pnn.visit_params(&mut |p, _| count += p.len());
        assert_eq!(count, pnn.param_count());
        // Trainable = column (same size as base) + laterals (12*12 + 12 + 12*4 + 4).
        let lateral_params = 12 * 12 + 12 + 12 * 4 + 4;
        assert_eq!(count, base_params + lateral_params);
    }

    #[test]
    fn act_is_bounded() {
        let mut rng = StdRng::seed_from_u64(6);
        let pnn = PnnPolicy::new(base(), PnnInit::Random, &mut rng);
        for _ in 0..10 {
            let a = pnn.act(&[0.5; 5], &mut rng, false);
            assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }
}
