//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! 1. **Oracle vs learned attacker** — how much does the DRL policy add
//!    over the geometric heuristic it was warm-started from?
//! 2. **Switcher threshold sweep** — sensitivity of the PNN defense to the
//!    Simplex threshold `sigma`.
//! 3. **IMU noise sensitivity** — how quickly the IMU attack degrades as
//!    sensor noise grows (the covertness/effectiveness trade-off).
//! 4. **Idealized vs detector-driven switcher** — the paper's idealized
//!    budget-aware Simplex switcher against the practical residual-based
//!    perturbation detector of `attack_core::detector` (the paper's §VII
//!    future-work item).
//! 5. **Scenario transfer** — victim and attacker were both trained on the
//!    default traffic pattern; how do attack success and driving quality
//!    generalize to denser, sparser, and two-lane traffic? (Section II
//!    flags generalizability as an open DRL problem.)
//! 6. **Action-space vs state-space attacks** — the related-work contrast
//!    of Section II: what does the state-space attacker's much stronger
//!    threat model (white-box policy + sensor write access) buy over the
//!    black-box action-space attack?
//! 7. **Detector robustness to benign faults** — the §VII residual
//!    detector under seeded hardware faults (`drive-sim::faults`): its
//!    false-positive rate on fault-injected but *unattacked* episodes
//!    versus its true-positive rate against the learned camera and IMU
//!    attackers, across the context's fault intensities.

use crate::engine::{Experiment, ExperimentOutput, RunContext};
use crate::harness::{attacked_records, AgentKind};
use attack_core::adv_reward::AdvReward;
use attack_core::budget::AttackBudget;
use attack_core::defense::SimplexSwitcher;
use attack_core::detector::{DetectorConfig, DetectorSimplexAgent};
use attack_core::eval::{run_attacked_episode_with_faults, run_attacked_episodes};
use attack_core::learned::LearnedAttacker;
use attack_core::oracle::OracleAttacker;
use attack_core::sensor::{AttackerSensor, SensorKind};
use attack_core::state_attack::{StateAttackConfig, StateAttackedAgent};
use drive_agents::e2e::E2eAgent;
use drive_metrics::episode::CellSummary;
use drive_metrics::export::Csv;
use drive_metrics::report::{fmt_f, fmt_pct, Table};
use drive_sim::faults::{FaultInjector, FaultSchedule};
use std::sync::Arc;

/// Result of one ablation arm.
#[derive(Debug, Clone)]
pub struct AblationCell {
    /// Arm label.
    pub label: String,
    /// Aggregated statistics.
    pub summary: CellSummary,
}

/// All ablation results.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Oracle vs learned camera attacker (vs the e2e victim, eps = 1).
    pub attacker_arms: Vec<AblationCell>,
    /// PNN switcher threshold sweep at eps = 0.5.
    pub switcher_arms: Vec<AblationCell>,
    /// IMU attack success under noise multipliers.
    pub imu_noise_arms: Vec<AblationCell>,
    /// Idealized (budget-aware) vs detector-driven PNN switcher.
    pub detector_arms: Vec<AblationCell>,
    /// Attack success and driving quality on unseen traffic patterns.
    pub transfer_arms: Vec<AblationCell>,
    /// Black-box action-space vs white-box state-space attacks.
    pub paradigm_arms: Vec<AblationCell>,
    /// Detector FPR under benign faults vs TPR under learned attacks,
    /// per fault intensity.
    pub fault_detector_arms: Vec<FaultDetectorCell>,
}

/// One fault-intensity row of ablation 7: how often the residual detector
/// fires (hardened column engages at least once) with and without a real
/// attack in the loop.
#[derive(Debug, Clone)]
pub struct FaultDetectorCell {
    /// Benign-fault schedule intensity (0 = clean).
    pub intensity: f64,
    /// Detector fired on a fault-injected but unattacked episode.
    pub benign_fpr: f64,
    /// Detector fired under the learned camera attack (eps = 1.0).
    pub camera_tpr: f64,
    /// Detector fired under the learned IMU attack (eps = 1.0).
    pub imu_tpr: f64,
    /// Mean fraction of benign-episode steps driven hardened.
    pub mean_hardened_benign: f64,
}

/// Runs (or reuses) all ablations via the context memo. Each arm derives
/// its episode seeds from its own subtree of `root/ablations`; arms that
/// compare configurations (2–6) share one base seed per section so the
/// sweep variable is the only difference between their cells.
pub fn run(ctx: &RunContext) -> Arc<AblationResult> {
    ctx.memo("ablations", || compute(ctx))
}

fn compute(ctx: &RunContext) -> AblationResult {
    let artifacts = ctx.artifacts;
    let config = ctx.config;
    let ns = ctx.seeds_for("ablations");
    let adv = AdvReward::default();
    let budget = AttackBudget::new(1.0);
    let episodes = ctx.scale.box_episodes;

    // --- 1. Oracle vs learned camera attacker ---
    let mut attacker_arms = Vec::new();
    {
        let mut agent = E2eAgent::new(artifacts.victim.clone(), config.features.clone(), 1, true);
        let records = run_attacked_episodes(
            &mut agent,
            |_| Some(OracleAttacker::new(budget)),
            &adv,
            &config.scenario,
            episodes,
            ns.child("oracle").seed(),
        );
        attacker_arms.push(AblationCell {
            label: "oracle".into(),
            summary: CellSummary::from_records(&records),
        });
    }
    let learned = attacked_records(
        AgentKind::E2e,
        Some((&artifacts.camera_attacker, SensorKind::Camera)),
        budget,
        ctx,
        episodes,
        &ns.child("learned-camera"),
    );
    attacker_arms.push(AblationCell {
        label: "learned camera".into(),
        summary: CellSummary::from_records(&learned),
    });

    // --- 2. Switcher threshold sweep (attacked at eps = 0.5) ---
    // Arms 2-7 parallelize over their sweep items: every item builds its
    // own agent and per-episode attackers, so the cells are independent
    // and `par_map` keeps them in sweep order for any worker count. The
    // sweep items share one base seed so the swept knob is the only
    // difference between cells.
    let sweep_budget = AttackBudget::new(0.5);
    let switcher_seed = ns.child("switcher").seed();
    let sigmas = [0.0, 0.2, 0.4, 0.6];
    let switcher_arms = drive_par::par_map(&sigmas, |_, &sigma| {
        let mut agent = E2eAgent::new(
            SimplexSwitcher::new(artifacts.pnn.clone(), sigma, sweep_budget.epsilon()),
            config.features.clone(),
            2,
            true,
        );
        let records = run_attacked_episodes(
            &mut agent,
            |seed| {
                Some(LearnedAttacker::new(
                    artifacts.camera_attacker.clone(),
                    AttackerSensor::camera(config.features.clone()),
                    sweep_budget,
                    seed,
                    true,
                ))
            },
            &adv,
            &config.scenario,
            episodes,
            switcher_seed,
        );
        AblationCell {
            label: format!("sigma={sigma:.1}"),
            summary: CellSummary::from_records(&records),
        }
    });

    // --- 3. IMU noise sensitivity ---
    let imu_noise_seed = ns.child("imu-noise").seed();
    let noise_mults = [0.0, 1.0, 4.0, 10.0];
    let imu_noise_arms = drive_par::par_map(&noise_mults, |_, &mult| {
        let mut imu_cfg = config.imu.clone();
        imu_cfg.accel_noise_std *= mult;
        imu_cfg.gyro_noise_std *= mult;
        let mut agent = E2eAgent::new(artifacts.victim.clone(), config.features.clone(), 3, true);
        let records = run_attacked_episodes(
            &mut agent,
            |seed| {
                Some(LearnedAttacker::new(
                    artifacts.imu_attacker.clone(),
                    AttackerSensor::imu(imu_cfg.clone(), seed),
                    budget,
                    seed,
                    true,
                ))
            },
            &adv,
            &config.scenario,
            episodes,
            imu_noise_seed,
        );
        AblationCell {
            label: format!("noise x{mult:.0}"),
            summary: CellSummary::from_records(&records),
        }
    });

    // --- 4. Idealized vs detector-driven switcher ---
    // Both switchers of a pair share the same episode seeds, so the
    // switching policy is the only difference between them.
    let detector_seed = ns.child("detector").seed();
    let detector_eps = [0.0, 0.5, 1.0];
    let detector_pairs = drive_par::par_map(&detector_eps, |_, &eps| {
        let b = AttackBudget::new(eps);
        let attack = |seed: u64| {
            (!b.is_zero()).then(|| {
                LearnedAttacker::new(
                    artifacts.camera_attacker.clone(),
                    AttackerSensor::camera(config.features.clone()),
                    b,
                    seed,
                    true,
                )
            })
        };
        let mut ideal = E2eAgent::new(
            SimplexSwitcher::new(artifacts.pnn.clone(), 0.2, eps),
            config.features.clone(),
            4,
            true,
        );
        let records = run_attacked_episodes(
            &mut ideal,
            attack,
            &adv,
            &config.scenario,
            episodes,
            detector_seed,
        );
        let ideal_cell = AblationCell {
            label: format!("ideal switcher eps={eps:.1}"),
            summary: CellSummary::from_records(&records),
        };

        let mut detected = DetectorSimplexAgent::new(
            artifacts.pnn.clone(),
            0.2,
            config.features.clone(),
            DetectorConfig::default(),
            4,
        );
        let records = run_attacked_episodes(
            &mut detected,
            attack,
            &adv,
            &config.scenario,
            episodes,
            detector_seed,
        );
        let detector_cell = AblationCell {
            label: format!("detector switcher eps={eps:.1}"),
            summary: CellSummary::from_records(&records),
        };
        (ideal_cell, detector_cell)
    });
    let detector_arms: Vec<AblationCell> = detector_pairs
        .into_iter()
        .flat_map(|(ideal, detected)| [ideal, detected])
        .collect();

    // --- 5. Scenario transfer ---
    let transfer_seed = ns.child("transfer").seed();
    let scenarios = [
        ("default", config.scenario.clone()),
        ("dense", drive_sim::scenario::Scenario::dense_traffic()),
        ("sparse", drive_sim::scenario::Scenario::sparse_traffic()),
        ("two-lane", drive_sim::scenario::Scenario::two_lane()),
    ];
    let transfer_arms = drive_par::par_map(&scenarios, |_, (label, scenario)| {
        let mut agent = E2eAgent::new(artifacts.victim.clone(), config.features.clone(), 5, true);
        let records = run_attacked_episodes(
            &mut agent,
            |seed| {
                Some(LearnedAttacker::new(
                    artifacts.camera_attacker.clone(),
                    AttackerSensor::camera(config.features.clone()),
                    budget,
                    seed,
                    true,
                ))
            },
            &adv,
            scenario,
            episodes,
            transfer_seed,
        );
        AblationCell {
            label: label.to_string(),
            summary: CellSummary::from_records(&records),
        }
    });

    // --- 6. Action-space vs state-space attack paradigms ---
    let mut paradigm_arms = Vec::new();
    {
        let records = attacked_records(
            AgentKind::E2e,
            Some((&artifacts.camera_attacker, SensorKind::Camera)),
            budget,
            ctx,
            episodes,
            &ns.child("paradigm").child("action-space"),
        );
        paradigm_arms.push(AblationCell {
            label: "action-space eps=1.0 (black-box)".into(),
            summary: CellSummary::from_records(&records),
        });
    }
    let state_seed = ns.child("paradigm").child("state-space").seed();
    let state_eps = [0.05f32, 0.1, 0.2];
    paradigm_arms.extend(drive_par::par_map(&state_eps, |_, &eps| {
        let mut agent = StateAttackedAgent::new(
            artifacts.victim.clone(),
            config.features.clone(),
            StateAttackConfig {
                epsilon: eps,
                ..StateAttackConfig::default()
            },
            6,
        );
        let records = run_attacked_episodes(
            &mut agent,
            |_| None::<attack_core::oracle::OracleAttacker>,
            &adv,
            &config.scenario,
            episodes,
            state_seed,
        );
        // The state attack perturbs observations, not steering, so the
        // steering-based attribution of `attack_success` never fires;
        // credit it with the raw side-collision rate instead.
        let mut summary = CellSummary::from_records(&records);
        summary.success_rate =
            records.iter().filter(|r| r.side_collision()).count() as f64 / records.len() as f64;
        AblationCell {
            label: format!("state-space eps={eps} (white-box)"),
            summary,
        }
    }));

    // --- 7. Detector FPR under benign faults vs TPR under attack ---
    // Episodes run one at a time (not through `run_attacked_episodes`)
    // because the detection verdict is read off the agent after each
    // episode: with latching on, `hardened_fraction() > 0` means the
    // detector fired at least once.
    let fault_ns = ns.child("fault-detector");
    let intensities = ctx.fault_intensities.clone();
    let fault_detector_arms = drive_par::par_map(&intensities, |_, &intensity| {
        let arm = fault_ns.child(format!("{intensity:.1}"));
        let schedule = FaultSchedule::benign(intensity, arm.child("schedule").seed());
        let mut fired = [0usize; 3]; // benign, camera, imu
        let mut hardened_sum = 0.0;
        for e in 0..episodes {
            let ep = arm.child(e);
            let seed = ep.seed();
            let act_fault_seed = ep.child("act-faults").seed();
            let mut run_one = |attack_sensor: Option<SensorKind>| -> bool {
                let mut agent = DetectorSimplexAgent::new(
                    artifacts.pnn.clone(),
                    0.2,
                    config.features.clone(),
                    DetectorConfig::default(),
                    7,
                )
                .with_observation_faults(FaultInjector::for_episode(&schedule, seed));
                let mut attacker = attack_sensor.map(|sk| {
                    let sensor = match sk {
                        SensorKind::Camera => AttackerSensor::camera(config.features.clone()),
                        SensorKind::Imu => AttackerSensor::imu(config.imu.clone(), seed),
                    };
                    let policy = match sk {
                        SensorKind::Camera => artifacts.camera_attacker.clone(),
                        SensorKind::Imu => artifacts.imu_attacker.clone(),
                    };
                    LearnedAttacker::new(policy, sensor, budget, seed, true)
                });
                let mut act_faults = FaultInjector::for_episode(&schedule, act_fault_seed);
                let _ = run_attacked_episode_with_faults(
                    &mut agent,
                    attacker
                        .as_mut()
                        .map(|a| a as &mut dyn drive_agents::runner::SteerAttacker),
                    &adv,
                    &config.scenario,
                    seed,
                    Some(&mut act_faults),
                );
                hardened_sum += if attack_sensor.is_none() {
                    agent.hardened_fraction()
                } else {
                    0.0
                };
                agent.hardened_fraction() > 0.0
            };
            fired[0] += usize::from(run_one(None));
            fired[1] += usize::from(run_one(Some(SensorKind::Camera)));
            fired[2] += usize::from(run_one(Some(SensorKind::Imu)));
        }
        let n = episodes.max(1) as f64;
        FaultDetectorCell {
            intensity,
            benign_fpr: fired[0] as f64 / n,
            camera_tpr: fired[1] as f64 / n,
            imu_tpr: fired[2] as f64 / n,
            mean_hardened_benign: hardened_sum / n,
        }
    });

    AblationResult {
        attacker_arms,
        switcher_arms,
        imu_noise_arms,
        detector_arms,
        transfer_arms,
        paradigm_arms,
        fault_detector_arms,
    }
}

impl AblationResult {
    /// Sections 1–6 as `(section, arms)` pairs, in report order.
    fn sections(&self) -> [(&'static str, &[AblationCell]); 6] {
        [
            ("attacker", &self.attacker_arms),
            ("switcher", &self.switcher_arms),
            ("imu-noise", &self.imu_noise_arms),
            ("detector", &self.detector_arms),
            ("transfer", &self.transfer_arms),
            ("paradigm", &self.paradigm_arms),
        ]
    }

    /// Exports ablations 1–6 as CSV (one row per arm).
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new([
            "section",
            "arm",
            "success_rate",
            "adv_mean",
            "nominal_mean",
            "mean_effort",
            "episodes",
        ]);
        for (section, arms) in self.sections() {
            for a in arms {
                csv.row([
                    section.to_string(),
                    a.label.clone(),
                    format!("{:.3}", a.summary.success_rate),
                    format!("{:.3}", a.summary.adversarial.mean),
                    format!("{:.3}", a.summary.nominal.mean),
                    format!("{:.4}", a.summary.mean_effort),
                    a.summary.episodes.to_string(),
                ]);
            }
        }
        csv
    }

    /// Exports ablation 7 (detector vs benign faults) as CSV.
    pub fn fault_detector_csv(&self) -> Csv {
        let mut csv = Csv::new([
            "intensity",
            "benign_fpr",
            "camera_tpr",
            "imu_tpr",
            "mean_hardened_benign",
        ]);
        for c in &self.fault_detector_arms {
            csv.row([
                format!("{:.1}", c.intensity),
                format!("{:.3}", c.benign_fpr),
                format!("{:.3}", c.camera_tpr),
                format!("{:.3}", c.imu_tpr),
                format!("{:.4}", c.mean_hardened_benign),
            ]);
        }
        csv
    }
}

/// Registry entry for the ablation studies.
pub struct AblationsExperiment;

impl Experiment for AblationsExperiment {
    fn name(&self) -> &'static str {
        "ablations"
    }

    fn description(&self) -> &'static str {
        "Seven ablation arms: attacker, switcher, noise, detector, transfer, paradigm, faults"
    }

    fn cells(&self) -> usize {
        // 1: oracle + learned; 2: four sigmas; 3: four noise levels;
        // 4: three eps pairs; 5: four scenarios; 6: action + three state;
        // 7: default three fault intensities.
        2 + 4 + 4 + 6 + 4 + 4 + 3
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let r = run(ctx);
        ExperimentOutput {
            report: r.to_string(),
            csvs: vec![
                ("ablations".to_string(), r.to_csv()),
                (
                    "ablations_fault_detector".to_string(),
                    r.fault_detector_csv(),
                ),
            ],
            svgs: Vec::new(),
        }
    }
}

fn arm_table(title: &str, arms: &[AblationCell]) -> String {
    let mut t = Table::new(["arm", "success", "adv mean", "nominal mean", "mean effort"]);
    for a in arms {
        t.row([
            a.label.clone(),
            fmt_pct(a.summary.success_rate),
            fmt_f(a.summary.adversarial.mean, 1),
            fmt_f(a.summary.nominal.mean, 1),
            fmt_f(a.summary.mean_effort, 2),
        ]);
    }
    format!("{title}\n{t}")
}

impl std::fmt::Display for AblationResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}",
            arm_table(
                "Ablation 1 — oracle vs learned camera attacker (eps=1.0)",
                &self.attacker_arms
            )
        )?;
        writeln!(
            f,
            "{}",
            arm_table(
                "Ablation 2 — PNN switcher threshold sweep (eps=0.5)",
                &self.switcher_arms
            )
        )?;
        writeln!(
            f,
            "{}",
            arm_table(
                "Ablation 3 — IMU attack vs sensor noise (eps=1.0)",
                &self.imu_noise_arms
            )
        )?;
        writeln!(
            f,
            "{}",
            arm_table(
                "Ablation 4 — idealized vs detector-driven PNN switcher (sigma=0.2)",
                &self.detector_arms
            )
        )?;
        writeln!(
            f,
            "{}",
            arm_table(
                "Ablation 5 — attack/victim transfer to unseen traffic (eps=1.0)",
                &self.transfer_arms
            )
        )?;
        writeln!(
            f,
            "{}",
            arm_table(
                "Ablation 6 — action-space (black-box) vs state-space (white-box) attacks",
                &self.paradigm_arms
            )
        )?;
        writeln!(
            f,
            "Ablation 7 — detector FPR under benign faults vs TPR under attack (eps=1.0)"
        )?;
        let mut t = Table::new([
            "fault intensity",
            "benign FPR",
            "TPR (camera)",
            "TPR (imu)",
            "hardened frac (benign)",
        ]);
        for c in &self.fault_detector_arms {
            t.row([
                fmt_f(c.intensity, 1),
                fmt_pct(c.benign_fpr),
                fmt_pct(c.camera_tpr),
                fmt_pct(c.imu_tpr),
                fmt_f(c.mean_hardened_benign, 3),
            ]);
        }
        writeln!(f, "{t}")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;
    use attack_core::pipeline::{prepare, PipelineConfig};

    #[test]
    fn smoke_ablations_run() {
        let dir = std::env::temp_dir().join("repro-bench-ablations-test");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        let ctx = RunContext::new(&artifacts, &config, Scale::smoke());
        let result = run(&ctx);
        assert_eq!(result.attacker_arms.len(), 2);
        assert_eq!(result.switcher_arms.len(), 4);
        assert_eq!(result.imu_noise_arms.len(), 4);
        assert_eq!(result.detector_arms.len(), 6);
        assert_eq!(result.transfer_arms.len(), 4);
        assert_eq!(result.paradigm_arms.len(), 4);
        assert_eq!(result.fault_detector_arms.len(), 3);
        // Clean episodes must not trip the detector; a full-budget camera
        // attack must (regardless of fault intensity).
        let clean = &result.fault_detector_arms[0];
        assert_eq!(clean.intensity, 0.0);
        assert_eq!(clean.benign_fpr, 0.0, "no faults, no attack, no alarm");
        // The quick-pipeline attacker is barely trained, so absolute TPR
        // is scale-dependent; the ordering TPR >= FPR must still hold on
        // clean episodes.
        assert!(
            clean.camera_tpr >= clean.benign_fpr,
            "camera TPR {} vs FPR {}",
            clean.camera_tpr,
            clean.benign_fpr
        );
        let text = format!("{result}");
        assert!(text.contains("oracle"));
        assert!(text.contains("sigma=0.4"));
        assert!(text.contains("noise x10"));
        assert!(text.contains("detector switcher"));
        assert!(text.contains("two-lane"));
        assert!(text.contains("state-space"));
        assert!(text.contains("benign FPR"));
        // CSV exports cover every arm.
        assert_eq!(result.to_csv().len(), 2 + 4 + 4 + 6 + 4 + 4);
        assert_eq!(result.fault_detector_csv().len(), 3);
    }
}
