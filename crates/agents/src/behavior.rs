//! Behaviour layer of the modular pipeline: lane-change decisions and local
//! waypoint planning.
//!
//! This is the paper's "aggressive mode" configuration (Section III-B): a
//! high reference speed, short following distances allowing decisive lane
//! changes, and permission to overtake in all lanes. The same planner also
//! provides the *privileged reference path* used by the end-to-end agent's
//! shaped reward (Section III-C) and by the trajectory-deviation metric of
//! Fig. 5 / Fig. 7.

use drive_sim::geometry::Vec2;
use drive_sim::road::Road;
use drive_sim::waypoints::{lane_change_path_into, lane_keep_path_into, Path};
use drive_sim::world::World;
use serde::{Deserialize, Serialize};

/// Tunables of the behaviour layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorConfig {
    /// Reference cruise speed, m/s.
    pub ref_speed: f64,
    /// Distance ahead at which a slower lead triggers an overtake decision.
    pub decision_distance: f64,
    /// Required clear space behind the ego in the target lane, meters.
    pub gap_behind: f64,
    /// Required clear space ahead of the ego in the target lane, meters.
    pub gap_ahead: f64,
    /// Longitudinal distance over which a lane change completes, meters.
    pub change_distance: f64,
    /// Waypoint spacing, meters.
    pub spacing: f64,
    /// Number of waypoints in each local plan.
    pub horizon: usize,
}

impl Default for BehaviorConfig {
    /// The aggressive freeway tuning used throughout the experiments.
    fn default() -> Self {
        BehaviorConfig {
            ref_speed: 16.0,
            decision_distance: 50.0,
            gap_behind: 6.0,
            gap_ahead: 30.0,
            change_distance: 30.0,
            spacing: 2.0,
            horizon: 40,
        }
    }
}

/// The maneuver currently being executed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Maneuver {
    /// Keeping the target lane.
    KeepLane,
    /// Executing a lane change that started at longitudinal position `from_x`
    /// from lateral position `from_y`, leaving `from_lane`.
    Changing {
        /// x where the change began.
        from_x: f64,
        /// y where the change began.
        from_y: f64,
        /// Lane the change departs from (for aborts).
        from_lane: usize,
    },
}

/// Memoized lane-change path. The path produced by the `Changing` branch
/// depends only on `(y0, target-lane center, x0)` and the planner's fixed
/// config, and those stay constant for the entire maneuver — so the 40
/// `atan` calls of `lane_change_path_into` run once per maneuver and every
/// following step copies the cached waypoints instead.
#[derive(Debug, Clone, Default)]
struct ChangeCache {
    /// `(y0, target-lane center y, x0)` as bits, when the cache is valid.
    key: Option<(u64, u64, u64)>,
    path: Path,
}

/// Stateful lane-change planner.
///
/// One instance per episode; call [`BehaviorPlanner::plan`] every control
/// step to obtain the current local waypoint path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BehaviorPlanner {
    config: BehaviorConfig,
    target_lane: usize,
    maneuver: Maneuver,
    /// Not part of the logical planner state (pure memoization).
    #[serde(skip, default)]
    change_cache: ChangeCache,
}

// The cache is excluded from equality: a deserialized planner (empty
// cache) must compare equal to the live planner it was saved from.
impl PartialEq for BehaviorPlanner {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.target_lane == other.target_lane
            && self.maneuver == other.maneuver
    }
}

impl BehaviorPlanner {
    /// Creates a planner starting in `initial_lane`.
    pub fn new(config: BehaviorConfig, initial_lane: usize) -> Self {
        BehaviorPlanner {
            config,
            target_lane: initial_lane,
            maneuver: Maneuver::KeepLane,
            // Pre-sized so the first memoized maneuver allocates nothing.
            change_cache: ChangeCache {
                key: None,
                path: Path::with_capacity(config.horizon),
            },
        }
    }

    /// `lane_change_path_into` through the maneuver-lifetime memo: a hit
    /// copies the cached waypoints (the inputs are bitwise those of the
    /// cached build, so the output is bitwise identical too); a miss
    /// builds normally and refreshes the cache.
    #[allow(clippy::too_many_arguments)]
    fn change_path_cached(
        &mut self,
        road: &Road,
        y0: f64,
        target_lane: usize,
        x0: f64,
        out: &mut Path,
    ) {
        let c = self.config;
        let y1 = road.lane_center_y(target_lane);
        let key = (y0.to_bits(), y1.to_bits(), x0.to_bits());
        if self.change_cache.key == Some(key) {
            out.copy_from(&self.change_cache.path);
            return;
        }
        lane_change_path_into(
            road,
            y0,
            target_lane,
            x0,
            c.change_distance,
            c.horizon,
            c.spacing,
            c.ref_speed,
            out,
        );
        self.change_cache.path.copy_from(out);
        self.change_cache.key = Some(key);
    }

    /// The lane the planner is currently steering towards.
    pub fn target_lane(&self) -> usize {
        self.target_lane
    }

    /// The maneuver in progress.
    pub fn maneuver(&self) -> Maneuver {
        self.maneuver
    }

    /// The configuration in use.
    pub fn config(&self) -> &BehaviorConfig {
        &self.config
    }

    /// Distance to the nearest NPC ahead of `x` in `lane`, if any.
    fn lead_distance(world: &World, lane: usize, x: f64) -> Option<f64> {
        let road = &world.scenario().road;
        world
            .npcs()
            .iter()
            .filter(|n| {
                let p = n.vehicle.pose.position;
                road.lane_index_at(p.x, p.y) == lane
            })
            .map(|n| n.vehicle.pose.position.x - x)
            .filter(|d| *d > 0.0)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Whether `lane` has a safe gap around longitudinal position `x`.
    fn lane_clear(&self, world: &World, lane: usize, x: f64) -> bool {
        let road = &world.scenario().road;
        !world.npcs().iter().any(|n| {
            let p = n.vehicle.pose.position;
            road.lane_index_at(p.x, p.y) == lane
                && p.x > x - self.config.gap_behind
                && p.x < x + self.config.gap_ahead
        })
    }

    /// Updates the lane decision and returns the local waypoint plan from
    /// the ego vehicle's current position.
    ///
    /// Allocates a fresh [`Path`] per call; hot loops should hold a reused
    /// buffer and call [`BehaviorPlanner::plan_into`] instead.
    pub fn plan(&mut self, world: &World) -> Path {
        let mut out = Path::default();
        self.plan_into(world, &mut out);
        out
    }

    /// [`BehaviorPlanner::plan`], writing the waypoints into `out` (cleared
    /// first). After warmup the call is allocation-free: the waypoint
    /// buffer, the candidate-lane array, and the wide-berth offset all live
    /// in reused or stack storage.
    pub fn plan_into(&mut self, world: &World, out: &mut Path) {
        let road = &world.scenario().road;
        let ego = world.ego();
        let pos = ego.pose.position;
        let c = self.config;

        match self.maneuver {
            Maneuver::Changing {
                from_x,
                from_y,
                from_lane,
            } => {
                // Abort if the target lane filled in behind/beside us before
                // we crossed the boundary (e.g. after heavy braking let a
                // trailing vehicle catch up).
                let crossed = (pos.y - road.lane_center_y(from_lane)).abs() > road.lane_width / 2.0;
                let occupied = world.npcs().iter().any(|n| {
                    let p = n.vehicle.pose.position;
                    road.lane_index_at(p.x, p.y) == self.target_lane
                        && p.x > pos.x - c.gap_behind
                        && p.x < pos.x + 10.0
                });
                if !crossed && occupied {
                    let old_target = self.target_lane;
                    self.target_lane = from_lane;
                    self.maneuver = Maneuver::Changing {
                        from_x: pos.x,
                        from_y: pos.y,
                        from_lane: old_target,
                    };
                    self.change_path_cached(road, pos.y, from_lane, pos.x, out);
                    return;
                }
                // Change completes once the blend distance has been covered
                // and the ego is near the target center.
                let target_y = road.lane_center_y(self.target_lane);
                if pos.x - from_x >= c.change_distance && (pos.y - target_y).abs() < 0.4 {
                    self.maneuver = Maneuver::KeepLane;
                } else {
                    self.change_path_cached(road, from_y, self.target_lane, from_x, out);
                    return;
                }
            }
            Maneuver::KeepLane => {}
        }

        // Forced merge: when the current target lane ends ahead (on-ramp
        // deadline or lane drop), change into the merge target before the
        // decision horizon runs out — immediately if the gap is clear, and
        // unconditionally once the deadline is close enough that waiting
        // would strand the ego on closing pavement.
        if let Some(end) = road.lane_end_x(self.target_lane) {
            let remaining = end - pos.x;
            let target = road.merge_target(self.target_lane);
            if remaining <= c.decision_distance
                && (self.lane_clear(world, target, pos.x) || remaining <= c.change_distance + 10.0)
            {
                let from_lane = self.target_lane;
                self.target_lane = target;
                self.maneuver = Maneuver::Changing {
                    from_x: pos.x,
                    from_y: pos.y,
                    from_lane,
                };
                self.change_path_cached(road, pos.y, target, pos.x, out);
                return;
            }
        }

        // Lane-change decision: a slower lead within decision distance in
        // the current target lane triggers a search for a clear lane,
        // preferring the left (overtaking) side. Lanes that are closed (or
        // about to close) within the decision horizon are never candidates.
        if let Some(lead) = Self::lead_distance(world, self.target_lane, pos.x) {
            if lead < c.decision_distance {
                // At most two adjacent lanes, left preferred: a fixed-size
                // candidate array keeps the decision allocation-free.
                let mut candidates = [0usize; 2];
                let mut n_cand = 0;
                if self.target_lane + 1 < road.num_lanes {
                    candidates[n_cand] = self.target_lane + 1;
                    n_cand += 1;
                }
                if self.target_lane > 0 {
                    candidates[n_cand] = self.target_lane - 1;
                    n_cand += 1;
                }
                if let Some(&lane) = candidates[..n_cand]
                    .iter()
                    .filter(|&&lane| road.lane_open_at(lane, pos.x + c.decision_distance))
                    .find(|&&lane| self.lane_clear(world, lane, pos.x))
                {
                    let from_lane = self.target_lane;
                    self.target_lane = lane;
                    self.maneuver = Maneuver::Changing {
                        from_x: pos.x,
                        from_y: pos.y,
                        from_lane,
                    };
                    self.change_path_cached(road, pos.y, lane, pos.x, out);
                    return;
                }
            }
        }

        // Lane keeping with a defensive "wide berth": when passing a
        // vehicle in an adjacent lane, bias the path away from it (within
        // the own lane) to maximize the margin a steering fault or attack
        // would have to cross.
        lane_keep_path_into(
            road,
            self.target_lane,
            pos.x,
            c.horizon,
            c.spacing,
            c.ref_speed,
            out,
        );
        let lane_y = road.lane_center_y(self.target_lane);
        let mut bias: f64 = 0.0;
        for npc in world.npcs() {
            let p = npc.vehicle.pose.position;
            if (p.x - pos.x).abs() < 12.0 && (p.y - lane_y).abs() < 1.5 * road.lane_width {
                let side = (p.y - lane_y).signum();
                if side != 0.0 {
                    bias = bias.abs().max(0.7) * -side;
                }
            }
        }
        if bias != 0.0 {
            // Keep a safe distance from the road edges: a berth that trades
            // NPC margin for barrier margin helps nobody (and a cloned
            // policy's imprecision would turn it into barrier strikes).
            let lane_y = road.lane_center_y(self.target_lane);
            let max_off = (road.lane_width - world.ego().params.width) / 2.0 - 0.2;
            let (right_edge, left_edge) = road.edge_ys_at(pos.x);
            let max_left = (left_edge - lane_y - 1.6).max(0.0);
            let max_right = (lane_y - right_edge - 1.6).max(0.0);
            let offset = bias.clamp(-max_off, max_off).clamp(-max_right, max_left);
            out.offset_lateral(offset);
        }
    }

    /// Desired speed given the traffic ahead: the reference speed, reduced
    /// towards the lead's speed when trapped behind one
    /// (constant-time-headway, aggressive tuning).
    ///
    /// While mid-change, the lane being vacated only triggers emergency
    /// braking (very short gap) — the aggressive configuration does not
    /// brake for a car it is already steering away from.
    pub fn desired_speed(&self, world: &World) -> f64 {
        let road = &world.scenario().road;
        let ego = world.ego();
        let pos = ego.pose.position;
        let current_lane = road.lane_of(pos.y);
        let mut desired: f64 = self.config.ref_speed;
        let lead_in = |lane: usize| {
            world
                .npcs()
                .iter()
                .filter(|n| {
                    let p = n.vehicle.pose.position;
                    road.lane_index_at(p.x, p.y) == lane
                })
                .filter(|n| n.vehicle.pose.position.x > pos.x)
                .min_by(|a, b| {
                    a.vehicle
                        .pose
                        .position
                        .x
                        .total_cmp(&b.vehicle.pose.position.x)
                })
        };
        // Full headway control against the target lane's lead.
        if let Some(lead) = lead_in(self.target_lane) {
            let gap = lead.vehicle.pose.position.x - pos.x;
            let min_gap = 6.0;
            let headway = 0.8; // aggressive: short following distance
            let desired_gap = min_gap + headway * ego.speed;
            if gap < desired_gap {
                let ratio = ((gap - min_gap) / (desired_gap - min_gap)).clamp(0.0, 1.0);
                let v = lead.vehicle.speed
                    + ratio * (self.config.ref_speed - lead.vehicle.speed).max(0.0);
                desired = desired.min(v);
            }
        }
        // Emergency braking against the lane being vacated: the threshold
        // scales with speed so a change initiated close behind a slow lead
        // sheds enough speed to clear laterally before contact.
        if current_lane != self.target_lane {
            if let Some(lead) = lead_in(current_lane) {
                let gap = lead.vehicle.pose.position.x - pos.x;
                if gap < (0.9 * ego.speed).max(12.0) {
                    desired = desired.min((lead.vehicle.speed - 2.0).max(0.0));
                }
            }
        }
        // Side-collision avoidance: if the ego is drifting laterally
        // towards a vehicle alongside, brake hard and fall behind it. This
        // is the escape route the paper grants the victim (§IV-A: the
        // thrust unit is unattacked, so "the ego vehicle [can] brake ...
        // and avoid a collision") and is what forces the attacker to
        // exceed a tolerance threshold before succeeding.
        let lateral_velocity = ego.velocity().y;
        for npc in world.npcs() {
            let npc_pos = npc.vehicle.pose.position;
            let dx = npc_pos.x - pos.x;
            let dy = npc_pos.y - pos.y;
            if dx.abs() < 10.0 && dy.abs() < 3.2 && dy.abs() > 0.1 {
                let closing = lateral_velocity * dy.signum();
                if closing > 0.15 {
                    desired = desired.min((npc.vehicle.speed - 5.0).max(0.0));
                }
            }
        }
        desired
    }

    /// Reference point used by deviation metrics: the lateral center of the
    /// current plan at the ego's longitudinal position.
    pub fn reference_point(&self, world: &World) -> Vec2 {
        let path = self.clone().plan_readonly(world);
        let proj = path.project(world.ego().pose.position, world.ego().pose.heading);
        let wp = path.waypoints()[proj.index];
        wp.position
    }

    /// A plan that does not mutate decision state (for metrics).
    fn plan_readonly(mut self, world: &World) -> Path {
        self.plan(world)
    }
}

/// Convenience: which lane index is leftmost for a road.
pub fn leftmost_lane(road: &Road) -> usize {
    road.num_lanes - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_sim::scenario::{NpcSpawn, Scenario};
    use drive_sim::vehicle::Actuation;

    fn scenario_with(npcs: Vec<NpcSpawn>) -> World {
        World::new(Scenario {
            npcs,
            ..Default::default()
        })
    }

    #[test]
    fn keeps_lane_on_empty_road() {
        let world = scenario_with(vec![]);
        let mut p = BehaviorPlanner::new(BehaviorConfig::default(), 1);
        let path = p.plan(&world);
        assert_eq!(p.target_lane(), 1);
        assert_eq!(p.maneuver(), Maneuver::KeepLane);
        let road = &world.scenario().road;
        for w in path.waypoints() {
            assert!((w.position.y - road.lane_center_y(1)).abs() < 1e-9);
        }
    }

    #[test]
    fn initiates_change_for_slow_lead() {
        // Lead in ego's lane, left lane clear → change left.
        let world = scenario_with(vec![NpcSpawn {
            lane: 1,
            x: 30.0,
            speed: 6.0,
        }]);
        let mut p = BehaviorPlanner::new(BehaviorConfig::default(), 1);
        let _ = p.plan(&world);
        assert_eq!(p.target_lane(), 2, "prefers the left lane");
        assert!(matches!(p.maneuver(), Maneuver::Changing { .. }));
    }

    #[test]
    fn falls_back_right_when_left_blocked() {
        let world = scenario_with(vec![
            NpcSpawn {
                lane: 1,
                x: 30.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 2,
                x: 20.0,
                speed: 6.0,
            },
        ]);
        let mut p = BehaviorPlanner::new(BehaviorConfig::default(), 1);
        let _ = p.plan(&world);
        assert_eq!(p.target_lane(), 0, "left blocked, goes right");
    }

    #[test]
    fn stays_when_both_sides_blocked() {
        let world = scenario_with(vec![
            NpcSpawn {
                lane: 1,
                x: 30.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 2,
                x: 20.0,
                speed: 6.0,
            },
            NpcSpawn {
                lane: 0,
                x: 15.0,
                speed: 6.0,
            },
        ]);
        let mut p = BehaviorPlanner::new(BehaviorConfig::default(), 1);
        let _ = p.plan(&world);
        assert_eq!(p.target_lane(), 1);
        assert_eq!(p.maneuver(), Maneuver::KeepLane);
    }

    #[test]
    fn merges_out_of_an_ending_lane() {
        // Ego keeps lane 2 of a lane-drop road; the drop is inside the
        // decision horizon, so the planner must initiate a merge right.
        let road = drive_sim::road::Road::lane_drop(3, 3.5, 1500.0, 40.0, 120.0);
        let world = World::new(Scenario {
            road,
            ego_lane: 2,
            npcs: vec![],
            ..Default::default()
        });
        let mut p = BehaviorPlanner::new(BehaviorConfig::default(), 2);
        let _ = p.plan(&world);
        assert_eq!(p.target_lane(), 1, "must merge out of the ending lane");
        assert!(matches!(p.maneuver(), Maneuver::Changing { .. }));
    }

    #[test]
    fn never_overtakes_into_a_closing_lane() {
        // Slow lead ahead in lane 1; lane 2 closes within the decision
        // horizon, so the planner must overtake right instead of left.
        let road = drive_sim::road::Road::lane_drop(3, 3.5, 1500.0, 45.0, 120.0);
        let world = World::new(Scenario {
            road,
            npcs: vec![NpcSpawn {
                lane: 1,
                x: 30.0,
                speed: 6.0,
            }],
            ..Default::default()
        });
        let mut p = BehaviorPlanner::new(BehaviorConfig::default(), 1);
        let _ = p.plan(&world);
        assert_eq!(p.target_lane(), 0, "lane 2 is closing, go right");
    }

    #[test]
    fn desired_speed_drops_behind_close_lead() {
        let world = scenario_with(vec![NpcSpawn {
            lane: 1,
            x: 12.0,
            speed: 6.0,
        }]);
        let p = BehaviorPlanner::new(BehaviorConfig::default(), 1);
        let v = p.desired_speed(&world);
        assert!(v < 16.0, "desired speed {v} should drop");
        let empty = scenario_with(vec![]);
        assert_eq!(p.desired_speed(&empty), 16.0);
    }

    #[test]
    fn wide_berth_biases_away_from_alongside_npc() {
        // NPC alongside in lane 0 while ego keeps lane 1: the plan shifts
        // towards lane 2's side (positive y bias).
        let world = scenario_with(vec![NpcSpawn {
            lane: 0,
            x: 2.0,
            speed: 6.0,
        }]);
        let mut p = BehaviorPlanner::new(BehaviorConfig::default(), 1);
        let path = p.plan(&world);
        let road = &world.scenario().road;
        let near = path.waypoints()[0].position.y;
        assert!(
            near > road.lane_center_y(1) + 0.3,
            "berth should bias left, got y {near}"
        );
    }

    #[test]
    fn wide_berth_capped_near_road_edge() {
        // Ego in the leftmost lane with an NPC on its right: the bias would
        // point at the barrier and must be capped to keep edge margin.
        let s = Scenario {
            ego_lane: 2,
            npcs: vec![NpcSpawn {
                lane: 1,
                x: 2.0,
                speed: 6.0,
            }],
            ..Default::default()
        };
        let world = World::new(s);
        let mut p = BehaviorPlanner::new(BehaviorConfig::default(), 2);
        let path = p.plan(&world);
        let road = &world.scenario().road;
        let y = path.waypoints()[0].position.y;
        assert!(
            road.left_edge_y() - y >= 1.6 - 1e-9,
            "berth must keep >= 1.6 m to the barrier, got {:.2}",
            road.left_edge_y() - y
        );
    }

    #[test]
    fn change_aborts_when_target_lane_fills() {
        // Start a change towards lane 2, then teleport an NPC beside the
        // ego in lane 2 before the boundary is crossed: the planner must
        // abort back to lane 1.
        let mut world = scenario_with(vec![NpcSpawn {
            lane: 1,
            x: 35.0,
            speed: 6.0,
        }]);
        let mut p = BehaviorPlanner::new(BehaviorConfig::default(), 1);
        let _ = p.plan(&world);
        assert_eq!(p.target_lane(), 2);
        // Rebuild the world with an NPC blocking lane 2 right beside x=0.
        let s = Scenario {
            npcs: vec![
                NpcSpawn {
                    lane: 1,
                    x: 35.0,
                    speed: 6.0,
                },
                NpcSpawn {
                    lane: 2,
                    x: 4.0,
                    speed: 6.0,
                },
            ],
            ..Default::default()
        };
        world = World::new(s);
        let _ = p.plan(&world);
        assert_eq!(p.target_lane(), 1, "abort must retarget the origin lane");
        assert!(matches!(p.maneuver(), Maneuver::Changing { .. }));
    }

    #[test]
    fn defensive_brake_on_lateral_drift_towards_npc() {
        // NPC alongside; give the ego a heading towards it → lateral
        // closing velocity → desired speed collapses.
        let s = Scenario {
            npcs: vec![NpcSpawn {
                lane: 2,
                x: 3.0,
                speed: 6.0,
            }],
            ..Default::default()
        };
        let mut world = World::new(s);
        // Induce a leftward drift.
        for _ in 0..4 {
            world.step(drive_sim::vehicle::Actuation::new(0.6, 0.0));
        }
        let p = BehaviorPlanner::new(BehaviorConfig::default(), 1);
        let v = p.desired_speed(&world);
        assert!(v < 6.0, "defensive brake expected, desired {v}");
    }

    #[test]
    fn plan_into_matches_plan_through_a_full_episode() {
        // Drive a scripted episode twice — once through the allocating
        // `plan` and once through `plan_into` with one reused buffer — and
        // require identical decisions and waypoints at every step.
        let road = drive_sim::road::Road::lane_drop(3, 3.5, 1500.0, 300.0, 380.0);
        let mut world = World::new(Scenario {
            road,
            npcs: vec![
                NpcSpawn {
                    lane: 1,
                    x: 30.0,
                    speed: 6.0,
                },
                NpcSpawn {
                    lane: 2,
                    x: 60.0,
                    speed: 7.0,
                },
            ],
            ..Default::default()
        });
        let mut a = BehaviorPlanner::new(BehaviorConfig::default(), 1);
        let mut b = a.clone();
        let mut buf = drive_sim::waypoints::Path::default();
        let mut cap = 0usize;
        for step in 0..120 {
            let path = a.plan(&world);
            b.plan_into(&world, &mut buf);
            assert_eq!(path.waypoints(), buf.waypoints(), "step {step}");
            assert_eq!(a.target_lane(), b.target_lane());
            assert_eq!(a.maneuver(), b.maneuver());
            if step == 0 {
                cap = buf.len();
            } else {
                assert_eq!(buf.len(), cap, "horizon is fixed");
            }
            let proj = path.project(world.ego().pose.position, world.ego().pose.heading);
            let steer = (-0.4 * proj.cross_track - 1.5 * proj.heading_error).clamp(-1.0, 1.0);
            world.step(Actuation::new(steer, 0.2));
            if world.is_done() {
                break;
            }
        }
    }

    #[test]
    fn change_completes_and_returns_to_keep_lane() {
        let mut world = scenario_with(vec![NpcSpawn {
            lane: 1,
            x: 30.0,
            speed: 6.0,
        }]);
        let mut p = BehaviorPlanner::new(BehaviorConfig::default(), 1);
        // Drive the world forward with a simple tracker: steer from the
        // plan's projected heading.
        for _ in 0..120 {
            let path = p.plan(&world);
            let proj = path.project(world.ego().pose.position, world.ego().pose.heading);
            let look = path.lookahead(world.ego().pose.position, 4);
            let to = look.position - world.ego().pose.position;
            let heading_err = drive_sim::geometry::angle_diff(to.angle(), world.ego().pose.heading);
            let steer = (3.0 * heading_err - 0.1 * proj.cross_track).clamp(-1.0, 1.0);
            world.step(Actuation::new(steer, 0.0));
            if world.is_done() {
                break;
            }
        }
        assert_eq!(p.maneuver(), Maneuver::KeepLane, "change should complete");
        let road = &world.scenario().road;
        let offset = world.ego().pose.position.y - road.lane_center_y(2);
        assert!(
            offset.abs() < 1.0,
            "ended near lane 2 center, offset {offset}"
        );
    }
}
