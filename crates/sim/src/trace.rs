//! Full per-step episode traces with CSV export.
//!
//! Where [`crate::record::EpisodeRecord`] stores the *metrics* of an
//! episode, an [`EpisodeTrace`] stores the *kinematics*: every vehicle's
//! pose and speed at every control step, plus the injected perturbation.
//! Traces feed visualization (the paper's Fig. 1b trajectory plot) and
//! post-hoc analysis; the CSV schema is one row per vehicle per step.

use crate::world::{CollisionEvent, World};
use serde::{Deserialize, Serialize};

/// Kinematic snapshot of one vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleSnapshot {
    /// World x, meters.
    pub x: f64,
    /// World y, meters.
    pub y: f64,
    /// Heading, radians.
    pub heading: f64,
    /// Speed, m/s.
    pub speed: f64,
    /// Realized normalized steering.
    pub steer: f64,
    /// Realized normalized thrust.
    pub thrust: f64,
}

impl VehicleSnapshot {
    /// Captures a vehicle's current state.
    pub fn of(v: &crate::vehicle::Vehicle) -> Self {
        VehicleSnapshot {
            x: v.pose.position.x,
            y: v.pose.position.y,
            heading: v.pose.heading,
            speed: v.speed,
            steer: v.actuation.steer,
            thrust: v.actuation.thrust,
        }
    }
}

/// One control step of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepTrace {
    /// Simulation time at the end of the step, seconds.
    pub time: f64,
    /// Ego vehicle state.
    pub ego: VehicleSnapshot,
    /// NPC states, in scenario order.
    pub npcs: Vec<VehicleSnapshot>,
    /// Injected steering perturbation this step.
    pub perturbation: f64,
    /// Collision detected this step, if any.
    pub collision: Option<CollisionEvent>,
}

/// A whole episode's kinematic history.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EpisodeTrace {
    /// Control period, seconds.
    pub dt: f64,
    /// Steps in order.
    pub steps: Vec<StepTrace>,
}

impl EpisodeTrace {
    /// Creates an empty trace for a world's timing.
    pub fn for_world(world: &World) -> Self {
        EpisodeTrace {
            dt: world.scenario().dt,
            steps: Vec::with_capacity(world.scenario().max_steps),
        }
    }

    /// Captures the current world state (call after each `world.step`).
    pub fn capture(&mut self, world: &World, perturbation: f64, collision: Option<CollisionEvent>) {
        self.steps.push(StepTrace {
            time: world.time(),
            ego: VehicleSnapshot::of(world.ego()),
            npcs: world
                .npcs()
                .iter()
                .map(|n| VehicleSnapshot::of(&n.vehicle))
                .collect(),
            perturbation,
            collision,
        });
    }

    /// Number of captured steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The ego trajectory as `(x, y)` pairs.
    pub fn ego_path(&self) -> Vec<(f64, f64)> {
        self.steps.iter().map(|s| (s.ego.x, s.ego.y)).collect()
    }

    /// Serializes to CSV: one row per vehicle per step.
    ///
    /// Columns: `time, vehicle, x, y, heading, speed, steer, thrust,
    /// perturbation, collision`. `vehicle` is `ego` or `npc<i>`;
    /// `perturbation`/`collision` are only set on ego rows.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("time,vehicle,x,y,heading,speed,steer,thrust,perturbation,collision\n");
        for s in &self.steps {
            let collision = s
                .collision
                .map(|c| format!("{:?}", c.kind))
                .unwrap_or_default();
            out.push_str(&format!(
                "{:.2},ego,{:.4},{:.4},{:.5},{:.3},{:.4},{:.4},{:.4},{}\n",
                s.time,
                s.ego.x,
                s.ego.y,
                s.ego.heading,
                s.ego.speed,
                s.ego.steer,
                s.ego.thrust,
                s.perturbation,
                collision
            ));
            for (i, n) in s.npcs.iter().enumerate() {
                out.push_str(&format!(
                    "{:.2},npc{i},{:.4},{:.4},{:.5},{:.3},{:.4},{:.4},,\n",
                    s.time, n.x, n.y, n.heading, n.speed, n.steer, n.thrust
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::vehicle::Actuation;

    fn traced_episode(steps: usize) -> EpisodeTrace {
        let mut world = World::new(Scenario::default());
        let mut trace = EpisodeTrace::for_world(&world);
        for _ in 0..steps {
            let out = world.step(Actuation::new(0.0, 0.1));
            trace.capture(&world, 0.05, out.collision);
            if world.is_done() {
                break;
            }
        }
        trace
    }

    #[test]
    fn capture_accumulates_steps() {
        let trace = traced_episode(10);
        assert_eq!(trace.len(), 10);
        assert!(!trace.is_empty());
        assert_eq!(trace.steps[0].npcs.len(), 6);
        // Time advances by dt per step.
        assert!((trace.steps[1].time - trace.steps[0].time - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ego_path_moves_forward() {
        let trace = traced_episode(20);
        let path = trace.ego_path();
        assert!(path.last().unwrap().0 > path.first().unwrap().0);
    }

    #[test]
    fn csv_has_expected_shape() {
        let trace = traced_episode(3);
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // Header + 3 steps x (1 ego + 6 npcs).
        assert_eq!(lines.len(), 1 + 3 * 7);
        assert!(lines[0].starts_with("time,vehicle,x,y"));
        assert!(lines[1].contains(",ego,"));
        assert!(lines[2].contains(",npc0,"));
        // Ego rows carry the perturbation.
        assert!(lines[1].contains("0.0500"));
    }

    #[test]
    fn snapshot_matches_vehicle() {
        let world = World::new(Scenario::default());
        let s = VehicleSnapshot::of(world.ego());
        assert_eq!(s.x, world.ego().pose.position.x);
        assert_eq!(s.speed, 16.0);
    }
}
