//! Log-bucketed latency histogram (HDR-style).
//!
//! The serving load generator records one latency sample per request at
//! thousands of QPS; keeping every sample for exact quantiles would cost
//! unbounded memory and a sort at report time. This histogram instead
//! buckets nanosecond values into power-of-two octaves split into
//! [`SUBDIVISIONS`] linear sub-buckets, bounding relative bucket width to
//! ~3% while using a fixed ~15 KiB of memory. Values below
//! `2 * SUBDIVISIONS` are stored exactly (their buckets are width one).
//!
//! Everything here is integer arithmetic over counts, so quantile
//! estimates — and any report rendered from them — are byte-identical
//! across reruns of the same workload. Merging is element-wise addition,
//! letting per-worker histograms combine without precision loss.

/// Linear sub-buckets per power-of-two octave. Must be a power of two.
pub const SUBDIVISIONS: u64 = 32;

const SUB_BITS: u32 = SUBDIVISIONS.trailing_zeros();
/// Bucket count covering the full `u64` range: values below
/// `2 * SUBDIVISIONS` get exact buckets, then [`SUBDIVISIONS`] buckets per
/// octave; the shift in [`bucket_index`] runs from 1 (values at
/// `2 * SUBDIVISIONS`) up to `63 - SUB_BITS` (values near `u64::MAX`).
const BUCKETS: usize =
    (2 * SUBDIVISIONS) as usize + (63 - SUB_BITS as usize) * SUBDIVISIONS as usize;

/// Fixed-memory histogram of `u64` samples (by convention, nanoseconds).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index holding `value`.
fn bucket_index(value: u64) -> usize {
    if value < 2 * SUBDIVISIONS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BITS;
    ((shift as u64 * SUBDIVISIONS) + (value >> shift)) as usize
}

/// Inclusive lower bound of bucket `index`.
fn bucket_low(index: usize) -> u64 {
    let e = index as u64 / SUBDIVISIONS;
    let sub = index as u64 % SUBDIVISIONS;
    if e == 0 {
        sub
    } else {
        (sub + SUBDIVISIONS) << (e - 1)
    }
}

/// Inclusive upper bound of bucket `index`.
fn bucket_high(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_low(index + 1) - 1
    }
}

/// Inclusive `[low, high]` bounds of the bucket that would hold `value`.
/// Exposed so tests (and reports) can state "within one bucket" precisely.
pub fn bucket_bounds(value: u64) -> (u64, u64) {
    let i = bucket_index(value);
    (bucket_low(i), bucket_high(i))
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0u64; BUCKETS].into_boxed_slice().try_into().unwrap(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds every sample of `other` into `self` (lossless: buckets align).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// Nearest-rank quantile estimate: the upper bound of the bucket that
    /// contains the sample of rank `ceil(q * count)` — never below the
    /// true sample's bucket, and at most one bucket width above it.
    /// Clamped to the exactly-tracked min/max so `quantile(0.0)` and
    /// `quantile(1.0)` are exact. Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("p999", &self.p999())
            .field("max", &self.max)
            .finish()
    }
}

impl std::fmt::Display for LatencyHistogram {
    /// Deterministic one-line summary (all integers; safe to diff).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={} p50={} p99={} p999={} max={} mean={}",
            self.count(),
            self.min(),
            self.p50(),
            self.p99(),
            self.p999(),
            self.max(),
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..2 * SUBDIVISIONS {
            assert_eq!(
                bucket_low(bucket_index(v)),
                v,
                "value {v} bucket is width one"
            );
            assert_eq!(bucket_high(bucket_index(v)), v);
            h.record(v);
        }
        assert_eq!(h.count(), 2 * SUBDIVISIONS);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 2 * SUBDIVISIONS - 1);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every probe value must land inside its own bucket's bounds, and
        // bucket bounds must tile the axis without gaps.
        let probes = [
            0u64,
            1,
            31,
            63,
            64,
            65,
            127,
            128,
            1_000,
            1_000_000,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let i = bucket_index(v);
            assert!(
                bucket_low(i) <= v && v <= bucket_high(i),
                "value {v} in bucket {i}"
            );
        }
        for i in 0..BUCKETS - 1 {
            assert_eq!(
                bucket_high(i) + 1,
                bucket_low(i + 1),
                "gap after bucket {i}"
            );
        }
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        // Above the exact range, bucket width / low bound <= 1/SUBDIVISIONS.
        for i in (2 * SUBDIVISIONS as usize)..BUCKETS - 1 {
            let w = bucket_high(i) - bucket_low(i) + 1;
            assert!(
                w * SUBDIVISIONS <= bucket_low(i),
                "bucket {i}: width {w} low {}",
                bucket_low(i)
            );
        }
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let mut h = LatencyHistogram::new();
        // 1000 samples: 0..1000. Exact p50 = 500, p99 = 990, p999 = 999.
        for v in 0..1000u64 {
            h.record(v);
        }
        // Estimates land within one bucket of the exact value.
        let assert_close = |est: u64, exact: u64| {
            let i = bucket_index(exact);
            assert!(
                bucket_low(i.saturating_sub(1)) <= est && est <= bucket_high(i + 1),
                "estimate {est} too far from exact {exact}"
            );
        };
        assert_close(h.p50(), 500);
        assert_close(h.p99(), 990);
        assert_close(h.p999(), 999);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 999);
        assert_eq!(h.mean(), 499);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [5u64, 100, 100, 3_000, 70_000] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 999_999, 12] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), both.quantile(q), "quantile {q}");
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.to_string(), "n=0 min=0 p50=0 p99=0 p999=0 max=0 mean=0");
    }
}
