//! Regression test: the steady-state fleet control loop —
//! `WorldBatch::step` plus `BehaviorPlanner::plan_into` for every slot —
//! performs zero heap allocations once its scratch buffers have warmed up.
//!
//! This is the hard form of the control-phase batching contract: the
//! per-world `StepScratch` (lead tables + NPC actuations), the batch's SoA
//! lanes and command buffers, and the planner's reused `Path` must all
//! reach a fixed point. A counting `#[global_allocator]` wrapping the
//! system allocator makes that an invariant instead of a benchmark hope;
//! the counters are thread-local, so other test threads can't pollute the
//! measurement.

use drive_agents::behavior::{BehaviorConfig, BehaviorPlanner};
use drive_sim::batch::{Precision, WorldBatch};
use drive_sim::scenario::Scenario;
use drive_sim::vehicle::Actuation;
use drive_sim::waypoints::Path;
use drive_sim::world::World;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// System allocator wrapper counting allocation events on this thread.
/// Only `alloc`/`realloc` count — frees are irrelevant to the invariant.
struct CountingAlloc;

// SAFETY: defers entirely to `System`; the bookkeeping around it is a
// thread-local counter bump with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(Cell::get)
}

/// One lockstep control iteration: plan every slot into its reused buffer,
/// derive a steering command from the projection, step the batch.
fn control_step(
    wb: &mut WorldBatch,
    planners: &mut [BehaviorPlanner],
    bufs: &mut [Path],
    actions: &mut Vec<Actuation>,
    outcomes: &mut Vec<drive_sim::world::StepOutcome>,
) {
    actions.clear();
    for i in 0..wb.len() {
        let world = &wb.worlds()[i];
        planners[i].plan_into(world, &mut bufs[i]);
        let proj = bufs[i].project(world.ego().pose.position, world.ego().pose.heading);
        let steer = (-0.4 * proj.cross_track - 1.5 * proj.heading_error).clamp(-1.0, 1.0);
        actions.push(Actuation::new(steer, 0.2));
    }
    wb.step(actions, outcomes);
}

fn run_case(precision: Precision) {
    const BATCH: usize = 8;
    let mut wb = WorldBatch::new(precision);
    let mut planners = Vec::new();
    let mut bufs = Vec::new();
    for slot in 0..BATCH as u64 {
        let mut s = Scenario::default().jittered(&mut StdRng::seed_from_u64(0xA110C + slot));
        s.max_steps = 400;
        let lane = s.ego_lane;
        wb.push(World::new(s));
        planners.push(BehaviorPlanner::new(BehaviorConfig::default(), lane));
        bufs.push(Path::default());
    }
    let mut actions: Vec<Actuation> = Vec::with_capacity(BATCH);
    let mut outcomes = Vec::new();

    // Warm-up: sizes the per-world step scratches, the batch's SoA lanes
    // and command buffers, and every planner's waypoint buffer (including
    // the lane-change variant, which shares the same fixed horizon).
    for _ in 0..30 {
        control_step(
            &mut wb,
            &mut planners,
            &mut bufs,
            &mut actions,
            &mut outcomes,
        );
    }

    let before = allocs();
    for _ in 0..10 {
        control_step(
            &mut wb,
            &mut planners,
            &mut bufs,
            &mut actions,
            &mut outcomes,
        );
    }
    let grew = allocs() - before;
    assert_eq!(
        grew, 0,
        "steady-state step+plan loop ({precision:?}) allocated {grew} times across 10 iterations"
    );
}

#[test]
fn steady_state_batch_step_and_plan_are_allocation_free_golden() {
    run_case(Precision::Golden);
}

#[test]
fn steady_state_batch_step_and_plan_are_allocation_free_fast() {
    run_case(Precision::Fast);
}
