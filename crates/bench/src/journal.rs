//! Crash-safe run journal: a write-ahead log of completed work.
//!
//! A `repro_bench` run with a CSV directory keeps a journal under
//! `<dir>/journal/`: an append-only WAL (`wal.bin`) of length-prefixed,
//! FNV-checksummed records, a `cells/` directory of per-cell episode-record
//! sidecars, and a flush-per-row `progress.csv` for humans watching a long
//! run. Every completed grid cell (one `(agent, attack, budget)` evaluation
//! in [`attacked_records`](crate::harness::attacked_records)) and every
//! completed experiment (manifest written and verified) is journaled the
//! moment it finishes.
//!
//! `--resume <dir>` re-opens the journal: the WAL is scanned, a torn or
//! corrupt tail (the record being appended when the process was killed) is
//! truncated away, and the run replays — journaled cells load from their
//! sidecars instead of re-simulating, journaled experiments with verified
//! manifests are skipped outright. Because every cell is a pure function of
//! its seed namespace, a resumed run produces byte-identical outputs to an
//! uninterrupted one.
//!
//! ## WAL format
//!
//! The file starts with the magic bytes [`MAGIC`]. Each record is framed as
//! `[u32 le payload length][u64 le FNV-1a of payload][payload]`; payloads
//! are single-line UTF-8:
//!
//! * `run <seed:016x> <config:016x> <box> <scatter>` — the run header
//!   (always the first record); a resume with different flags is refused.
//! * `cell <key:016x> <digest:016x> <episodes> <label>` — one completed
//!   cell; `digest` checksums the sidecar's record text.
//! * `exp <manifest_fnv:016x> <name>` — one completed experiment.

use drive_metrics::export::CsvSink;
use drive_seed::fnv1a_64;
use drive_sim::record::{decode_records, encode_records, EpisodeRecord};
use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic bytes at the start of every WAL file.
pub const MAGIC: &[u8] = b"RBJRNL1\n";

/// Bytes of frame overhead per record (length prefix + checksum).
const FRAME_HEADER: usize = 4 + 8;

/// Errors from journal creation, resume, or appends.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem failure.
    Io(std::io::Error),
    /// The journal on disk belongs to a run with different parameters
    /// (seed, scale, or pipeline configuration).
    Incompatible(String),
    /// The journal is structurally broken beyond tail truncation (bad
    /// magic, missing or malformed header record).
    Corrupt(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Incompatible(msg) => write!(f, "journal incompatible: {msg}"),
            JournalError::Corrupt(msg) => write!(f, "journal corrupt: {msg}"),
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// The parameters a journal is pinned to: resuming with a different
/// header is refused rather than silently mixing two runs' results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunHeader {
    /// Root evaluation seed ([`Scale::seed`](crate::harness::Scale)).
    pub seed: u64,
    /// FNV-1a hash of the pipeline configuration's debug rendering (the
    /// same hash the manifests record).
    pub config_hash: u64,
    /// Episodes per box cell.
    pub box_episodes: usize,
    /// Rounds per scatter budget.
    pub scatter_rounds: usize,
}

impl RunHeader {
    /// The header for a run over `config` at `scale` — the same
    /// `config_hash` formula the manifests use, so one hash identifies the
    /// run everywhere.
    pub fn for_run(
        config: &attack_core::pipeline::PipelineConfig,
        scale: crate::harness::Scale,
    ) -> RunHeader {
        RunHeader {
            seed: scale.seed,
            config_hash: fnv1a_64(format!("{config:?}").as_bytes()),
            box_episodes: scale.box_episodes,
            scatter_rounds: scale.scatter_rounds,
        }
    }

    /// Renders the header as its single-line WAL record. Public so the
    /// shard coordinator can reuse the exact same pinning format for its
    /// shared-directory run header and per-worker WALs.
    pub fn encode(&self) -> String {
        format!(
            "run {:016x} {:016x} {} {}",
            self.seed, self.config_hash, self.box_episodes, self.scatter_rounds
        )
    }

    /// Parses a header line produced by [`RunHeader::encode`].
    ///
    /// # Errors
    ///
    /// [`JournalError::Corrupt`] for anything that is not a well-formed
    /// `run ...` record.
    pub fn decode(line: &str) -> Result<RunHeader, JournalError> {
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 5 || parts[0] != "run" {
            return Err(JournalError::Corrupt(format!(
                "bad run header record '{line}'"
            )));
        }
        let bad = |what: &str| JournalError::Corrupt(format!("bad {what} in run header '{line}'"));
        Ok(RunHeader {
            seed: u64::from_str_radix(parts[1], 16).map_err(|_| bad("seed"))?,
            config_hash: u64::from_str_radix(parts[2], 16).map_err(|_| bad("config hash"))?,
            box_episodes: parts[3].parse().map_err(|_| bad("box episodes"))?,
            scatter_rounds: parts[4].parse().map_err(|_| bad("scatter rounds"))?,
        })
    }
}

/// Frames one payload for the WAL: length prefix, FNV-1a checksum, bytes.
pub fn encode_frame(payload: &str) -> Vec<u8> {
    let bytes = payload.as_bytes();
    let mut out = Vec::with_capacity(FRAME_HEADER + bytes.len());
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a_64(bytes).to_le_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Scans a WAL body (everything after [`MAGIC`]) and returns the decoded
/// payloads of every intact frame plus the byte length of that valid
/// prefix. Scanning stops — without failing — at the first torn frame
/// (incomplete length/checksum/payload), checksum mismatch, or non-UTF-8
/// payload: exactly the states an append interrupted by SIGKILL can leave.
pub fn scan_frames(body: &[u8]) -> (Vec<String>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while body.len() - pos >= FRAME_HEADER {
        let len = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let sum = u64::from_le_bytes(body[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let start = pos + FRAME_HEADER;
        let Some(end) = start.checked_add(len).filter(|&e| e <= body.len()) else {
            break; // torn: payload shorter than the length prefix claims
        };
        let payload = &body[start..end];
        if fnv1a_64(payload) != sum {
            break; // torn or corrupted mid-append
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        records.push(text.to_string());
        pos = end;
    }
    (records, pos)
}

#[derive(Debug, Clone, Copy)]
struct CellEntry {
    digest: u64,
    episodes: usize,
}

struct Inner {
    wal: std::fs::File,
    cells: HashMap<u64, CellEntry>,
    experiments: HashSet<String>,
    progress: CsvSink,
}

/// Handle to one run's journal; clone-free, shared via `Arc` in the
/// [`RunContext`](crate::engine::RunContext). All appends go through an
/// internal mutex, so experiments can journal from worker threads.
pub struct JournalHandle {
    dir: PathBuf,
    header: RunHeader,
    inner: Mutex<Inner>,
}

const PROGRESS_HEADERS: [&str; 4] = ["kind", "name", "episodes", "digest"];

impl JournalHandle {
    fn wal_path(dir: &Path) -> PathBuf {
        dir.join("wal.bin")
    }

    fn cell_path(&self, key: u64) -> PathBuf {
        self.dir.join("cells").join(format!("cell-{key:016x}.ckpt"))
    }

    /// Starts a fresh journal in `<dir>`, discarding any previous one.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(dir: impl Into<PathBuf>, header: RunHeader) -> Result<Self, JournalError> {
        let dir = dir.into();
        // A fresh run owns the directory: stale sidecars from an older,
        // differently-configured run must not survive next to the new WAL.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("cells"))?;
        let mut wal = std::fs::File::create(Self::wal_path(&dir))?;
        wal.write_all(MAGIC)?;
        wal.write_all(&encode_frame(&header.encode()))?;
        wal.sync_data()?;
        let progress = CsvSink::create(dir.join("progress.csv"), PROGRESS_HEADERS)?;
        Ok(JournalHandle {
            dir,
            header,
            inner: Mutex::new(Inner {
                wal,
                cells: HashMap::new(),
                experiments: HashSet::new(),
                progress,
            }),
        })
    }

    /// Re-opens an existing journal, truncating any torn tail, and
    /// verifies it belongs to a run with the same parameters. A missing
    /// WAL (the previous run was killed before journal creation, or the
    /// directory is new) falls back to [`JournalHandle::create`].
    ///
    /// # Errors
    ///
    /// [`JournalError::Incompatible`] when the on-disk header differs from
    /// `header`, [`JournalError::Corrupt`] for bad magic or a broken
    /// header record, [`JournalError::Io`] for filesystem failures.
    pub fn resume(dir: impl Into<PathBuf>, header: RunHeader) -> Result<Self, JournalError> {
        let dir = dir.into();
        let wal_path = Self::wal_path(&dir);
        if !wal_path.exists() {
            return Self::create(dir, header);
        }
        let bytes = std::fs::read(&wal_path)?;
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(JournalError::Corrupt(format!(
                "{} does not start with the journal magic",
                wal_path.display()
            )));
        }
        let (records, valid_len) = scan_frames(&bytes[MAGIC.len()..]);
        let Some(header_line) = records.first() else {
            return Err(JournalError::Corrupt(format!(
                "{} has no run header record",
                wal_path.display()
            )));
        };
        let on_disk = RunHeader::decode(header_line)?;
        if on_disk != header {
            return Err(JournalError::Incompatible(format!(
                "journal was written by a different run \
                 (on disk: seed {:016x}, config {:016x}, scale {}x{}; \
                 this run: seed {:016x}, config {:016x}, scale {}x{}) — \
                 rerun without --resume to start fresh",
                on_disk.seed,
                on_disk.config_hash,
                on_disk.box_episodes,
                on_disk.scatter_rounds,
                header.seed,
                header.config_hash,
                header.box_episodes,
                header.scatter_rounds,
            )));
        }
        // The WAL is the source of truth; `progress.csv` is a derived,
        // flush-per-row human log. A kill can leave the two out of step —
        // a torn final CSV row (flushed mid-write), or a journaled cell
        // whose progress row never flushed — so resume reconciles by
        // rebuilding the CSV from the recovered WAL records rather than
        // blindly appending after whatever tail the kill left behind.
        let mut progress = CsvSink::create(dir.join("progress.csv"), PROGRESS_HEADERS)?;
        let mut cells = HashMap::new();
        let mut experiments = HashSet::new();
        for line in &records[1..] {
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.first() {
                Some(&"cell") if parts.len() >= 4 => {
                    let (Ok(key), Ok(digest), Ok(episodes)) = (
                        u64::from_str_radix(parts[1], 16),
                        u64::from_str_radix(parts[2], 16),
                        parts[3].parse::<usize>(),
                    ) else {
                        continue; // checksummed but unparseable: skip, recompute
                    };
                    cells.insert(key, CellEntry { digest, episodes });
                    let label = parts[4..].join(" ");
                    let _ = progress.row([
                        "cell",
                        &label,
                        &episodes.to_string(),
                        &format!("{digest:016x}"),
                    ]);
                }
                Some(&"exp") if parts.len() >= 3 => {
                    let name = parts[2..].join(" ");
                    let _ = progress.row(["experiment", &name, "-", parts[1]]);
                    experiments.insert(name);
                }
                _ => {} // unknown record kind: forward compatibility
            }
        }
        // Truncate the torn tail so subsequent appends start on a frame
        // boundary.
        let keep = MAGIC.len() + valid_len;
        if keep < bytes.len() {
            eprintln!(
                "[resume] truncating {} torn byte(s) from {}",
                bytes.len() - keep,
                wal_path.display()
            );
        }
        let wal = std::fs::OpenOptions::new().write(true).open(&wal_path)?;
        wal.set_len(keep as u64)?;
        let mut wal = wal;
        use std::io::Seek as _;
        wal.seek(std::io::SeekFrom::End(0))?;
        std::fs::create_dir_all(dir.join("cells"))?;
        Ok(JournalHandle {
            dir,
            header,
            inner: Mutex::new(Inner {
                wal,
                cells,
                experiments,
                progress,
            }),
        })
    }

    /// The header this journal is pinned to.
    pub fn header(&self) -> RunHeader {
        self.header
    }

    /// Number of journaled cells (test/observability hook).
    pub fn cell_count(&self) -> usize {
        self.inner.lock().expect("journal lock").cells.len()
    }

    /// Whether `name` completed (manifest written) in a journaled run.
    pub fn experiment_done(&self, name: &str) -> bool {
        self.inner
            .lock()
            .expect("journal lock")
            .experiments
            .contains(name)
    }

    fn append(inner: &mut Inner, payload: &str) -> std::io::Result<()> {
        inner.wal.write_all(&encode_frame(payload))?;
        inner.wal.sync_data()
    }

    /// Journals a completed experiment (its manifest checksum and name).
    ///
    /// # Errors
    ///
    /// Propagates WAL append failures; the caller warns and continues (a
    /// failed journal append costs recomputation on resume, not
    /// correctness).
    pub fn record_experiment(&self, name: &str, manifest_fnv: u64) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("journal lock");
        Self::append(&mut inner, &format!("exp {manifest_fnv:016x} {name}"))?;
        inner.experiments.insert(name.to_string());
        let _ = inner
            .progress
            .row(["experiment", name, "-", &format!("{manifest_fnv:016x}")]);
        Ok(())
    }

    /// Loads a journaled cell's records from its sidecar, or `None` if the
    /// cell is not journaled, was journaled with a different episode
    /// count, or its sidecar fails any integrity check — every failure
    /// mode degrades to recomputing the cell.
    pub fn load_cell(&self, key: u64, episodes: usize) -> Option<Vec<EpisodeRecord>> {
        let entry = {
            let inner = self.inner.lock().expect("journal lock");
            inner.cells.get(&key).copied()?
        };
        if entry.episodes != episodes {
            return None;
        }
        let path = self.cell_path(key);
        let text = match drive_nn::checkpoint::load_from_file(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("[resume] journaled cell {key:016x} unreadable ({e}); recomputing");
                return None;
            }
        };
        if fnv1a_64(text.as_bytes()) != entry.digest {
            eprintln!("[resume] journaled cell {key:016x} digest mismatch; recomputing");
            return None;
        }
        match decode_records(&text) {
            Ok(records) if records.len() == episodes => Some(records),
            Ok(records) => {
                eprintln!(
                    "[resume] journaled cell {key:016x} has {} record(s), expected {episodes}; recomputing",
                    records.len()
                );
                None
            }
            Err(e) => {
                eprintln!("[resume] journaled cell {key:016x} undecodable ({e}); recomputing");
                None
            }
        }
    }

    /// Journals a completed cell: writes the sidecar durably, then the WAL
    /// record (sidecar-first ordering, so a journaled cell always has its
    /// data), then a progress row.
    ///
    /// # Errors
    ///
    /// Propagates sidecar/WAL write failures; the caller warns and
    /// continues.
    pub fn store_cell(
        &self,
        key: u64,
        label: &str,
        episodes: usize,
        records: &[EpisodeRecord],
    ) -> std::io::Result<()> {
        let text = encode_records(records);
        let digest = fnv1a_64(text.as_bytes());
        drive_nn::checkpoint::save_to_file(self.cell_path(key), &text)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let mut inner = self.inner.lock().expect("journal lock");
        Self::append(
            &mut inner,
            &format!("cell {key:016x} {digest:016x} {episodes} {label}"),
        )?;
        inner.cells.insert(key, CellEntry { digest, episodes });
        let _ = inner.progress.row([
            "cell",
            label,
            &episodes.to_string(),
            &format!("{digest:016x}"),
        ]);
        Ok(())
    }
}

impl std::fmt::Debug for JournalHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalHandle")
            .field("dir", &self.dir)
            .field("header", &self.header)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_sim::record::EpisodeRecord;

    fn header() -> RunHeader {
        RunHeader {
            seed: 10_000,
            config_hash: 0xabcd_ef01_2345_6789,
            box_episodes: 4,
            scatter_rounds: 2,
        }
    }

    fn records(n: usize) -> Vec<EpisodeRecord> {
        (0..n)
            .map(|i| EpisodeRecord {
                steps: 10 + i,
                dt: 0.1,
                deviation: vec![0.1 * i as f64; 3],
                ..EpisodeRecord::default()
            })
            .collect()
    }

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn frames_round_trip_and_stop_at_torn_tail() {
        let payloads = ["run 1 2 3 4", "cell a b 4 fig5/x", "exp ff baseline"];
        let mut body = Vec::new();
        for p in &payloads {
            body.extend_from_slice(&encode_frame(p));
        }
        let (all, len) = scan_frames(&body);
        assert_eq!(all, payloads);
        assert_eq!(len, body.len());
        // Truncating anywhere inside the last frame drops exactly it.
        let cut = body.len() - 1;
        let (partial, plen) = scan_frames(&body[..cut]);
        assert_eq!(partial, payloads[..2]);
        assert!(plen <= cut);
        // A flipped payload byte stops the scan at the corrupt frame.
        let mut corrupt = body.clone();
        let second_payload_start = encode_frame(payloads[0]).len() + FRAME_HEADER;
        corrupt[second_payload_start] ^= 0xff;
        let (recovered, _) = scan_frames(&corrupt);
        assert_eq!(recovered, payloads[..1]);
    }

    #[test]
    fn create_resume_round_trips_cells_and_experiments() {
        let dir = temp("repro-bench-journal-roundtrip");
        let j = JournalHandle::create(&dir, header()).unwrap();
        let recs = records(4);
        j.store_cell(42, "fig5/pi_ori/camera/0.5", 4, &recs)
            .unwrap();
        j.record_experiment("baseline", 0xdead_beef).unwrap();
        assert_eq!(j.load_cell(42, 4).unwrap(), recs);
        assert!(j.load_cell(43, 4).is_none(), "unknown key");
        assert!(j.load_cell(42, 5).is_none(), "episode-count mismatch");
        drop(j);

        let j = JournalHandle::resume(&dir, header()).unwrap();
        assert_eq!(j.cell_count(), 1);
        assert!(j.experiment_done("baseline"));
        assert!(!j.experiment_done("fig4"));
        assert_eq!(j.load_cell(42, 4).unwrap(), recs);
        // Appending after a resume works (the WAL cursor is at the end).
        j.store_cell(77, "fig5/pi_ori/camera/1.0", 4, &recs)
            .unwrap();
        drop(j);
        let j = JournalHandle::resume(&dir, header()).unwrap();
        assert_eq!(j.cell_count(), 2);
        // progress.csv survives with one row per event plus the header.
        let progress = std::fs::read_to_string(dir.join("progress.csv")).unwrap();
        assert_eq!(progress.lines().count(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_truncates_torn_tail_and_recovers_the_prefix() {
        let dir = temp("repro-bench-journal-torn");
        let j = JournalHandle::create(&dir, header()).unwrap();
        j.store_cell(1, "a", 4, &records(4)).unwrap();
        j.store_cell(2, "b", 4, &records(4)).unwrap();
        drop(j);
        // Simulate a kill mid-append: chop bytes off the WAL tail.
        let wal = dir.join("wal.bin");
        let mut bytes = std::fs::read(&wal).unwrap();
        let full = bytes.len();
        bytes.truncate(full - 5);
        bytes.extend_from_slice(&encode_frame("cell 000000000000000")[..7]);
        std::fs::write(&wal, &bytes).unwrap();

        let j = JournalHandle::resume(&dir, header()).unwrap();
        assert_eq!(j.cell_count(), 1, "torn second cell is dropped");
        assert!(j.load_cell(1, 4).is_some());
        // The tail was truncated: a fresh append lands on a frame boundary
        // and survives the next resume.
        j.store_cell(3, "c", 4, &records(4)).unwrap();
        drop(j);
        let j = JournalHandle::resume(&dir, header()).unwrap();
        assert_eq!(j.cell_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_reconciles_progress_csv_against_the_wal() {
        let dir = temp("repro-bench-journal-reconcile");
        let j = JournalHandle::create(&dir, header()).unwrap();
        j.store_cell(1, "cell-a", 4, &records(4)).unwrap();
        j.store_cell(2, "cell-b", 4, &records(4)).unwrap();
        j.record_experiment("fig4", 0xfeed).unwrap();
        drop(j);

        // A kill mid-flush can tear the final CSV row while the WAL record
        // survived (WAL is appended first). Simulate the torn row, plus an
        // extra garbage row the WAL knows nothing about.
        let progress_path = dir.join("progress.csv");
        let full = std::fs::read_to_string(&progress_path).unwrap();
        let torn = format!("{}cell,cell-c,4,deadbe", full.trim_end_matches('\n'));
        std::fs::write(&progress_path, torn).unwrap();

        let j = JournalHandle::resume(&dir, header()).unwrap();
        let rebuilt = std::fs::read_to_string(&progress_path).unwrap();
        let lines: Vec<&str> = rebuilt.lines().collect();
        // Header + exactly one row per WAL record: the torn row is gone
        // and every journaled cell/experiment is restored (WAL preferred).
        assert_eq!(lines.len(), 4, "rebuilt rows:\n{rebuilt}");
        assert!(lines[1].starts_with("cell,cell-a,4,"));
        assert!(lines[2].starts_with("cell,cell-b,4,"));
        assert!(lines[3].starts_with("experiment,fig4,-,"));
        assert!(!rebuilt.contains("cell-c"), "torn row must not survive");
        assert_eq!(j.cell_count(), 2);
        // Post-resume appends land on a clean tail.
        j.store_cell(3, "cell-d", 4, &records(4)).unwrap();
        let appended = std::fs::read_to_string(&progress_path).unwrap();
        assert_eq!(appended.lines().count(), 5);
        assert!(appended.lines().last().unwrap().starts_with("cell,cell-d"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_refuses_a_different_run_and_bad_magic() {
        let dir = temp("repro-bench-journal-incompat");
        let j = JournalHandle::create(&dir, header()).unwrap();
        drop(j);
        let other = RunHeader {
            seed: 9,
            ..header()
        };
        match JournalHandle::resume(&dir, other) {
            Err(JournalError::Incompatible(msg)) => {
                assert!(msg.contains("different run"), "{msg}")
            }
            other => panic!("expected Incompatible, got {other:?}"),
        }
        std::fs::write(dir.join("wal.bin"), b"not a journal at all").unwrap();
        assert!(matches!(
            JournalHandle::resume(&dir, header()),
            Err(JournalError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_on_an_empty_dir_is_a_fresh_journal() {
        let dir = temp("repro-bench-journal-fresh");
        let j = JournalHandle::resume(&dir, header()).unwrap();
        assert_eq!(j.cell_count(), 0);
        assert!(dir.join("wal.bin").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_sidecar_degrades_to_recompute() {
        let dir = temp("repro-bench-journal-tamper");
        let j = JournalHandle::create(&dir, header()).unwrap();
        j.store_cell(7, "x", 4, &records(4)).unwrap();
        let sidecar = dir.join("cells").join(format!("cell-{:016x}.ckpt", 7));
        // Deleting the sidecar: journaled but unreadable -> None.
        std::fs::remove_file(&sidecar).unwrap();
        assert!(j.load_cell(7, 4).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_discards_a_previous_journal() {
        let dir = temp("repro-bench-journal-recreate");
        let j = JournalHandle::create(&dir, header()).unwrap();
        j.store_cell(1, "a", 4, &records(4)).unwrap();
        drop(j);
        let j = JournalHandle::create(&dir, header()).unwrap();
        assert_eq!(j.cell_count(), 0);
        assert!(j.load_cell(1, 4).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
