//! Golden snapshot tests for the experiment engine.
//!
//! The engine must be a pure dispatch layer: running an experiment through
//! [`repro_bench::engine::execute`] has to produce byte-identical CSVs to
//! calling the experiment module directly with the same seed, and the
//! manifest written next to the CSVs has to round-trip and verify against
//! the files actually on disk.

use attack_core::pipeline::{prepare, Artifacts, PipelineConfig};
use repro_bench::engine::{self, Registry, RunContext};
use repro_bench::experiments::{baseline, fig4};
use repro_bench::harness::Scale;
use repro_bench::manifest::Manifest;
use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

/// One quick-trained artifact set shared by every test in this file.
fn setup() -> (&'static Artifacts, &'static PipelineConfig) {
    static SETUP: OnceLock<(Artifacts, PipelineConfig)> = OnceLock::new();
    let (a, c) = SETUP.get_or_init(|| {
        let dir = std::env::temp_dir().join("repro-bench-golden-test");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        (artifacts, config)
    });
    (a, c)
}

fn out_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-bench-golden-{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn registry_covers_all_experiments() {
    let names: Vec<&str> = Registry::all().iter().map(|e| e.name()).collect();
    assert_eq!(
        names,
        [
            "baseline",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "ablations",
            "scenario-matrix"
        ]
    );
}

#[test]
fn engine_dispatch_matches_direct_module_run() {
    let (artifacts, config) = setup();

    // Engine path: dispatch through the registry with a CSV sink.
    let dir = out_dir("dispatch");
    let mut ctx = RunContext::new(artifacts, config, Scale::smoke());
    ctx.csv_dir = Some(dir.clone());
    for name in ["baseline", "fig4"] {
        let exp = Registry::find(name).expect("registered");
        engine::execute(exp, &ctx).expect("engine run");
    }

    // Direct path: a fresh context (fresh memo) at the same seed, calling
    // the modules the way their unit tests do.
    let direct = RunContext::new(artifacts, config, Scale::smoke());
    let baseline_csv = baseline::run(&direct).to_csv().to_csv_string();
    let fig4_csv = fig4::run(&direct).to_csv().to_csv_string();

    let on_disk = |stem: &str| fs::read_to_string(dir.join(format!("{stem}.csv"))).unwrap();
    assert_eq!(on_disk("baseline"), baseline_csv);
    assert_eq!(on_disk("fig4"), fig4_csv);
}

#[test]
fn manifest_round_trips_and_checksums_match_outputs() {
    let (artifacts, config) = setup();
    let dir = out_dir("manifest");
    let mut ctx = RunContext::new(artifacts, config, Scale::smoke());
    ctx.csv_dir = Some(dir.clone());

    let exp = Registry::find("baseline").expect("registered");
    let run = engine::execute(exp, &ctx).expect("engine run");
    let emitted = run.manifest.expect("csv sink implies a manifest");

    // Round-trip through the JSON on disk.
    let path = dir.join("baseline.manifest.json");
    let loaded = Manifest::load(&path).expect("manifest parses");
    assert_eq!(loaded.experiment, "baseline");
    assert_eq!(loaded.seed_root, emitted.seed_root);
    assert_eq!(loaded.config_hash, emitted.config_hash);
    assert_eq!(loaded.outputs.len(), emitted.outputs.len());

    // Every checksum in the manifest matches the bytes on disk.
    loaded.verify(&dir).expect("all outputs verify");

    // Corrupting an output (same length, different bytes) is caught.
    let target = dir.join(&loaded.outputs[0].file);
    let mut bytes = fs::read(&target).unwrap();
    let last = bytes.len() - 1;
    bytes[last] = bytes[last].wrapping_add(1);
    fs::write(&target, bytes).unwrap();
    let errs = loaded.verify(&dir).expect_err("corruption detected");
    assert!(
        errs.iter().any(|e| e.contains(&loaded.outputs[0].file)),
        "error names the corrupted file: {errs:?}"
    );
}

#[test]
fn standalone_and_all_runs_share_seed_namespaces() {
    let (artifacts, config) = setup();

    // fig8 run standalone (pulls fig5+fig7 itself) vs fig5/fig7 run first
    // then fig8 derived — identical CSVs because seeds are namespaced by
    // experiment name, not execution order.
    let standalone = RunContext::new(artifacts, config, Scale::smoke());
    let f8_standalone = repro_bench::experiments::fig8::run(&standalone)
        .to_csv()
        .to_csv_string();

    let ordered = RunContext::new(artifacts, config, Scale::smoke());
    repro_bench::experiments::fig5::run(&ordered);
    repro_bench::experiments::fig7::run(&ordered);
    let f8_ordered = repro_bench::experiments::fig8::run(&ordered)
        .to_csv()
        .to_csv_string();

    assert_eq!(f8_standalone, f8_ordered);
}
