//! Per-worker progress rows for sharded multi-process runs.
//!
//! Each shard worker appends one flush-per-row CSV line per lease event
//! (claimed, computed, loaded, stolen, released, waited) to its own
//! `progress.csv`, so a human tailing a long distributed run can see who
//! owns what — and a post-mortem can reconstruct the claim history of any
//! cell. Rows are observability only: the WAL and sidecars remain the
//! source of truth, and a lost progress row costs nothing.

use crate::export::CsvSink;
use std::collections::BTreeMap;
use std::path::Path;

/// Column schema shared by every worker progress log.
pub const PROGRESS_HEADERS: [&str; 4] = ["worker", "event", "cell", "detail"];

/// Flush-per-row progress log for one shard worker.
///
/// Wraps a [`CsvSink`] with the fixed shard schema and keeps per-event
/// counters so the worker can print an end-of-run summary without
/// re-reading its own log.
pub struct WorkerProgress {
    sink: CsvSink,
    worker: String,
    counts: BTreeMap<&'static str, u64>,
}

impl WorkerProgress {
    /// Creates (or truncates) the worker's progress log at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: impl AsRef<Path>, worker: impl Into<String>) -> std::io::Result<Self> {
        Ok(WorkerProgress {
            sink: CsvSink::create(path, PROGRESS_HEADERS)?,
            worker: worker.into(),
            counts: BTreeMap::new(),
        })
    }

    /// Appends (and flushes) one event row. `event` is a short verb
    /// (`claimed`, `computed`, `loaded`, `stolen`, `released`, `waited`),
    /// `cell` the cell label or key, `detail` free-form context (previous
    /// owner of a stolen lease, wait duration, ...).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers typically warn and continue
    /// (a lost row costs observability, never correctness).
    pub fn event(&mut self, event: &'static str, cell: &str, detail: &str) -> std::io::Result<()> {
        *self.counts.entry(event).or_insert(0) += 1;
        self.sink.row([self.worker.as_str(), event, cell, detail])
    }

    /// How many rows of `event` have been logged.
    pub fn count(&self, event: &str) -> u64 {
        self.counts.get(event).copied().unwrap_or(0)
    }

    /// One-line `event=count` summary in deterministic (alphabetical)
    /// order, e.g. `computed=12 loaded=420 stolen=1`.
    pub fn summary(&self) -> String {
        let parts: Vec<String> = self
            .counts
            .iter()
            .map(|(event, n)| format!("{event}={n}"))
            .collect();
        parts.join(" ")
    }
}

impl std::fmt::Debug for WorkerProgress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerProgress")
            .field("worker", &self.worker)
            .field("counts", &self.counts)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_flush_and_counters_track_events() {
        let dir = std::env::temp_dir().join("drive-metrics-progress-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("progress.csv");
        let mut log = WorkerProgress::create(&path, "w1").unwrap();
        log.event("claimed", "cell-a", "").unwrap();
        log.event("computed", "cell-a", "1.2s").unwrap();
        log.event("loaded", "cell-b", "from w2").unwrap();
        log.event("loaded", "cell-c", "from w2").unwrap();

        // Flush-per-row: visible on disk while the sink is still open.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 5, "{text}");
        assert!(text.starts_with("worker,event,cell,detail\n"));
        assert!(text.contains("w1,computed,cell-a,1.2s"));

        assert_eq!(log.count("loaded"), 2);
        assert_eq!(log.count("stolen"), 0);
        assert_eq!(log.summary(), "claimed=1 computed=1 loaded=2");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
