//! Offline stand-in for the `serde` facade.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a forward
//! declaration of serializability — no code path serializes through serde
//! (CSV export is hand-rolled in `drive-metrics`). This crate provides the
//! trait names and re-exports the (no-op) derive macros so the annotations
//! keep compiling in the offline build container. If a future PR needs real
//! serialization, swap this for the upstream crate and the derives become
//! live without touching call sites.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stand-in).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stand-in).
pub trait Deserialize<'de>: Sized {}
