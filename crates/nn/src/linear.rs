//! Fully-connected layer with explicit gradient buffers.

use crate::mat::Mat;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer computing `y = x @ W^T + b`.
///
/// Gradients accumulate into `grad_w` / `grad_b` across
/// [`Linear::backward`] calls until [`Linear::zero_grad`] is called, matching
/// the usual deep-learning training loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Weights, shape `(out, in)`.
    pub w: Mat,
    /// Bias, length `out`.
    pub b: Vec<f32>,
    /// Accumulated weight gradients, shape `(out, in)`.
    pub grad_w: Mat,
    /// Accumulated bias gradients, length `out`.
    pub grad_b: Vec<f32>,
}

impl Linear {
    /// Creates a layer with Kaiming-uniform weights (`U(-k, k)`,
    /// `k = sqrt(1/in)`) and zero bias, the PyTorch default.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "layer dims must be positive");
        let k = (1.0 / in_dim as f32).sqrt();
        let data = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-k..=k))
            .collect();
        Linear {
            w: Mat::from_vec(out_dim, in_dim, data),
            b: vec![0.0; out_dim],
            grad_w: Mat::zeros(out_dim, in_dim),
            grad_b: vec![0.0; out_dim],
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Forward pass: `x @ W^T + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim()`.
    pub fn forward(&self, x: &Mat) -> Mat {
        let mut y = Mat::default();
        self.forward_into(x, &mut y);
        y
    }

    /// Forward pass into a reusable output buffer (allocation-free
    /// [`Linear::forward`] once the buffer has warmed up).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim()`.
    pub fn forward_into(&self, x: &Mat, y: &mut Mat) {
        x.matmul_nt_into(&self.w, y);
        y.add_row_broadcast(&self.b);
    }

    /// Forward pass against a caller-supplied pre-packed transpose of the
    /// weights (`wt` must be `self.w` transposed — see
    /// [`crate::mlp::Mlp::pack_weights`]). Bit-identical to
    /// [`Linear::forward_into`] while skipping the per-call transpose pack
    /// — the wide-batch inference fast path.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim()` or `wt` is not `w` transposed.
    pub fn forward_prepacked_into(&self, x: &Mat, wt: &Mat, y: &mut Mat) {
        x.matmul_nt_prepacked_bias_into(&self.w, wt, &self.b, y);
    }

    /// Backward pass. `x` must be the input that produced `grad_out`'s
    /// forward pass. Accumulates parameter gradients and returns the
    /// gradient with respect to the input.
    pub fn backward(&mut self, x: &Mat, grad_out: &Mat) -> Mat {
        let mut grad_in = Mat::default();
        self.backward_into(x, grad_out, &mut grad_in);
        grad_in
    }

    /// Backward pass writing the input gradient into a reusable buffer.
    /// Parameter gradients accumulate exactly as in [`Linear::backward`]
    /// (directly into `grad_w` via `matmul_tn_acc` — no temporary matrix).
    pub fn backward_into(&mut self, x: &Mat, grad_out: &Mat, grad_in: &mut Mat) {
        // dW += grad_out^T @ x  (shape out x in)
        grad_out.matmul_tn_acc(x, &mut self.grad_w);
        // db += column sums of grad_out. Summed per column in ascending
        // batch order into a register before one add into `grad_b` — same
        // FP order as the `sum_rows` temporary this replaces, without its
        // per-call allocation.
        for (j, g) in self.grad_b.iter_mut().enumerate() {
            let mut s = 0.0;
            for r in 0..grad_out.rows() {
                s += grad_out.row(r)[j];
            }
            *g += s;
        }
        // dX = grad_out @ W
        grad_out.matmul_into(&self.w, grad_in);
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_w.map_inplace(|_| 0.0);
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Visits `(params, grads)` slices in a deterministic order, for
    /// optimizers.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.w.data_mut(), self.grad_w.data_mut());
        f(&mut self.b, &mut self.grad_b);
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.data().len() + self.b.len()
    }

    /// Copies parameters from another layer of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn copy_params_from(&mut self, other: &Linear) {
        assert_eq!(self.w.rows(), other.w.rows());
        assert_eq!(self.w.cols(), other.w.cols());
        self.w = other.w.clone();
        self.b = other.b.clone();
    }

    /// Polyak update: `theta <- tau * other + (1 - tau) * theta`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn polyak_from(&mut self, other: &Linear, tau: f32) {
        assert_eq!(self.w.rows(), other.w.rows());
        assert_eq!(self.w.cols(), other.w.cols());
        for (t, s) in self.w.data_mut().iter_mut().zip(other.w.data()) {
            *t = tau * s + (1.0 - tau) * *t;
        }
        for (t, s) in self.b.iter_mut().zip(&other.b) {
            *t = tau * s + (1.0 - tau) * *t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Linear {
        let mut rng = StdRng::seed_from_u64(42);
        Linear::new(3, 2, &mut rng)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut l = layer();
        l.b = vec![1.0, -1.0];
        let x = Mat::zeros(4, 3);
        let y = l.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 2));
        // Zero input → pure bias.
        for r in 0..4 {
            assert_eq!(y.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut l = layer();
        let x = Mat::from_vec(2, 3, vec![0.5, -1.0, 2.0, 0.1, 0.3, -0.7]);
        // Loss = sum(y); grad_out = ones.
        let grad_out = Mat::from_vec(2, 2, vec![1.0; 4]);
        l.zero_grad();
        let grad_in = l.backward(&x, &grad_out);

        let eps = 1e-3f32;
        let loss = |l: &Linear, x: &Mat| l.forward(x).data().iter().sum::<f32>();
        // Weight gradient check (spot check a few entries).
        for &(r, c) in &[(0usize, 0usize), (1, 2), (0, 1)] {
            let mut lp = l.clone();
            let v = lp.w.get(r, c);
            lp.w.set(r, c, v + eps);
            let up = loss(&lp, &x);
            lp.w.set(r, c, v - eps);
            let down = loss(&lp, &x);
            let fd = (up - down) / (2.0 * eps);
            let got = l.grad_w.get(r, c);
            assert!((fd - got).abs() < 1e-2, "dW[{r},{c}] fd {fd} vs {got}");
        }
        // Input gradient check.
        for &(r, c) in &[(0usize, 0usize), (1, 1)] {
            let mut xp = x.clone();
            let v = xp.get(r, c);
            xp.set(r, c, v + eps);
            let up = loss(&l, &xp);
            xp.set(r, c, v - eps);
            let down = loss(&l, &xp);
            let fd = (up - down) / (2.0 * eps);
            let got = grad_in.get(r, c);
            assert!((fd - got).abs() < 1e-2, "dX[{r},{c}] fd {fd} vs {got}");
        }
        // Bias gradient: sum over batch of ones = batch size.
        assert_eq!(l.grad_b, vec![2.0, 2.0]);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut l = layer();
        let x = Mat::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let g = Mat::from_vec(1, 2, vec![1.0, 1.0]);
        l.backward(&x, &g);
        let after_one = l.grad_b.clone();
        l.backward(&x, &g);
        assert_eq!(l.grad_b[0], after_one[0] * 2.0);
        l.zero_grad();
        assert_eq!(l.grad_b, vec![0.0, 0.0]);
    }

    #[test]
    fn polyak_moves_towards_source() {
        let mut a = layer();
        let mut rng = StdRng::seed_from_u64(7);
        let b = Linear::new(3, 2, &mut rng);
        let before = a.w.get(0, 0);
        a.polyak_from(&b, 0.5);
        let expect = 0.5 * b.w.get(0, 0) + 0.5 * before;
        assert!((a.w.get(0, 0) - expect).abs() < 1e-7);
        // tau = 1 copies exactly.
        a.polyak_from(&b, 1.0);
        assert_eq!(a.w, b.w);
    }

    #[test]
    fn param_visit_covers_all() {
        let mut l = layer();
        let mut count = 0;
        l.visit_params(&mut |p, g| {
            assert_eq!(p.len(), g.len());
            count += p.len();
        });
        assert_eq!(count, l.param_count());
        assert_eq!(count, 3 * 2 + 2);
    }

    #[test]
    fn init_is_seed_deterministic() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(Linear::new(4, 4, &mut r1), Linear::new(4, 4, &mut r2));
    }
}
