//! One module per figure of the paper's evaluation, plus the §III baseline,
//! the ablation studies, and the generated scenario matrix.

pub mod ablations;
pub mod baseline;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod scenario_matrix;
