//! Run manifests: a JSON record emitted next to every experiment's CSVs.
//!
//! A manifest captures enough to re-derive and verify a run: the
//! experiment name, the seed-tree root and namespace path, the scale, a
//! hash of the pipeline configuration, wall-clock and throughput, and an
//! FNV-1a 64 checksum of every output file. `repro-bench
//! validate-manifest <path>` re-reads the listed files and checks sizes
//! and checksums ([`Manifest::verify`]).
//!
//! The workspace has no JSON dependency, so both the emitter and the
//! parser are hand-rolled (shared with bench-compare in [`crate::json`]).
//! 64-bit values that may exceed the f64-exact integer range (seeds,
//! hashes, checksums) are serialized as hex strings to survive any JSON
//! reader.

use crate::json::{get, get_f64, get_str, get_u64, json_string, Json};
use std::fmt::Write as _;
use std::path::Path;

/// Checksum record for one output file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputEntry {
    /// File name relative to the manifest's directory.
    pub file: String,
    /// Size in bytes.
    pub bytes: u64,
    /// FNV-1a 64 checksum of the file contents.
    pub fnv64: u64,
}

/// The JSON manifest emitted for every engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Schema tag ([`Manifest::SCHEMA`]).
    pub schema: String,
    /// Registry name of the experiment.
    pub experiment: String,
    /// The experiment's registry description.
    pub description: String,
    /// Root seed of the run's [`SeedTree`](drive_seed::SeedTree).
    pub seed_root: u64,
    /// Seed namespace path of the experiment (e.g. `root/fig4`).
    pub seed_path: String,
    /// Episodes per box-plot cell at the run's scale.
    pub box_episodes: usize,
    /// Rounds per scatter cell at the run's scale.
    pub scatter_rounds: usize,
    /// Worker-thread count the run was pinned to.
    pub jobs: usize,
    /// FNV-1a 64 hash of the pipeline configuration's debug rendering.
    pub config_hash: u64,
    /// Wall-clock seconds for the experiment phase.
    pub wall_secs: f64,
    /// Simulation steps executed during the phase.
    pub steps: u64,
    /// Simulation steps per second.
    pub steps_per_sec: f64,
    /// Checksums of every file the run wrote.
    pub outputs: Vec<OutputEntry>,
}

impl Manifest {
    /// Schema tag stamped into every manifest.
    pub const SCHEMA: &'static str = "repro-bench/manifest-v1";

    /// Renders the manifest as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_string(&self.schema));
        let _ = writeln!(out, "  \"experiment\": {},", json_string(&self.experiment));
        let _ = writeln!(
            out,
            "  \"description\": {},",
            json_string(&self.description)
        );
        let _ = writeln!(out, "  \"seed_root\": \"{:#018x}\",", self.seed_root);
        let _ = writeln!(out, "  \"seed_path\": {},", json_string(&self.seed_path));
        let _ = writeln!(out, "  \"box_episodes\": {},", self.box_episodes);
        let _ = writeln!(out, "  \"scatter_rounds\": {},", self.scatter_rounds);
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(out, "  \"config_hash\": \"{:#018x}\",", self.config_hash);
        let _ = writeln!(out, "  \"wall_secs\": {:.3},", self.wall_secs);
        let _ = writeln!(out, "  \"steps\": {},", self.steps);
        let _ = writeln!(out, "  \"steps_per_sec\": {:.1},", self.steps_per_sec);
        out.push_str("  \"outputs\": [\n");
        for (i, o) in self.outputs.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"file\": {}, \"bytes\": {}, \"fnv64\": \"{:#018x}\"}}{}",
                json_string(&o.file),
                o.bytes,
                o.fnv64,
                if i + 1 < self.outputs.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a manifest from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message if the text is not valid JSON, is not a
    /// `manifest-v1` document, or lacks a required field.
    pub fn from_json(text: &str) -> Result<Manifest, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object().ok_or("manifest root is not an object")?;
        let schema = get_str(obj, "schema")?;
        if schema != Self::SCHEMA {
            return Err(format!(
                "unsupported manifest schema '{schema}' (expected '{}')",
                Self::SCHEMA
            ));
        }
        let mut outputs = Vec::new();
        for (i, item) in get(obj, "outputs")?
            .as_array()
            .ok_or("'outputs' is not an array")?
            .iter()
            .enumerate()
        {
            let o = item
                .as_object()
                .ok_or_else(|| format!("outputs[{i}] is not an object"))?;
            outputs.push(OutputEntry {
                file: get_str(o, "file")?,
                bytes: get_u64(o, "bytes")?,
                fnv64: get_u64(o, "fnv64")?,
            });
        }
        Ok(Manifest {
            schema,
            experiment: get_str(obj, "experiment")?,
            description: get_str(obj, "description")?,
            seed_root: get_u64(obj, "seed_root")?,
            seed_path: get_str(obj, "seed_path")?,
            box_episodes: get_u64(obj, "box_episodes")? as usize,
            scatter_rounds: get_u64(obj, "scatter_rounds")? as usize,
            jobs: get_u64(obj, "jobs")? as usize,
            config_hash: get_u64(obj, "config_hash")?,
            wall_secs: get_f64(obj, "wall_secs")?,
            steps: get_u64(obj, "steps")?,
            steps_per_sec: get_f64(obj, "steps_per_sec")?,
            outputs,
        })
    }

    /// Loads and parses a manifest file.
    ///
    /// # Errors
    ///
    /// Returns a message for unreadable files or invalid JSON.
    pub fn load(path: impl AsRef<Path>) -> Result<Manifest, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json(&text)
    }

    /// Writes the manifest atomically (temp file + rename, the checkpoint
    /// convention), creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a failed write removes the temp file on a
    /// best-effort basis.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file_name = path.file_name().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("manifest path has no file name: {}", path.display()),
            )
        })?;
        let tmp = path.with_file_name(format!("{}.tmp", file_name.to_string_lossy()));
        if let Err(e) = std::fs::write(&tmp, self.to_json()) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::rename(&tmp, path)
    }

    /// Re-reads every listed output under `dir` and checks size and
    /// checksum.
    ///
    /// # Errors
    ///
    /// Returns one message per missing, truncated, or corrupted file.
    pub fn verify(&self, dir: &Path) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        for o in &self.outputs {
            let path = dir.join(&o.file);
            match std::fs::read(&path) {
                Err(e) => problems.push(format!("{}: {e}", o.file)),
                Ok(bytes) => {
                    if bytes.len() as u64 != o.bytes {
                        problems.push(format!(
                            "{}: size {} != manifest {}",
                            o.file,
                            bytes.len(),
                            o.bytes
                        ));
                    } else {
                        let sum = drive_seed::fnv1a_64(&bytes);
                        if sum != o.fnv64 {
                            problems.push(format!(
                                "{}: checksum {sum:#018x} != manifest {:#018x}",
                                o.file, o.fnv64
                            ));
                        }
                    }
                }
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            schema: Manifest::SCHEMA.to_string(),
            experiment: "fig4".to_string(),
            description: "Attack effectiveness \"box\" plots".to_string(),
            seed_root: 10_000,
            seed_path: "root/fig4".to_string(),
            box_episodes: 30,
            scatter_rounds: 10,
            jobs: 8,
            config_hash: u64::MAX - 7,
            wall_secs: 12.345,
            steps: 987_654,
            steps_per_sec: 80_004.2,
            outputs: vec![
                OutputEntry {
                    file: "fig4.csv".to_string(),
                    bytes: 1234,
                    fnv64: 0xdead_beef_dead_beef,
                },
                OutputEntry {
                    file: "fig4a_nominal.svg".to_string(),
                    bytes: 9,
                    fnv64: 7,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let m = sample();
        let parsed = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn full_range_u64_survives_the_round_trip() {
        let mut m = sample();
        m.config_hash = u64::MAX;
        m.outputs[0].fnv64 = u64::MAX - 1;
        let parsed = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed.config_hash, u64::MAX);
        assert_eq!(parsed.outputs[0].fnv64, u64::MAX - 1);
    }

    #[test]
    fn rejects_wrong_schema_and_garbage() {
        let text = sample().to_json().replace("manifest-v1", "manifest-v9");
        assert!(Manifest::from_json(&text).unwrap_err().contains("schema"));
        assert!(Manifest::from_json("not json").is_err());
        assert!(Manifest::from_json("{}").unwrap_err().contains("schema"));
        assert!(Manifest::from_json("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn write_load_verify_detects_corruption() {
        let dir = std::env::temp_dir().join("repro-bench-manifest-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let payload = b"x,y\n1,2\n";
        std::fs::write(dir.join("out.csv"), payload).unwrap();
        let mut m = sample();
        m.outputs = vec![OutputEntry {
            file: "out.csv".to_string(),
            bytes: payload.len() as u64,
            fnv64: drive_seed::fnv1a_64(payload),
        }];
        let path = dir.join("fig4.manifest.json");
        m.write_to(&path).unwrap();
        assert!(!dir.join("fig4.manifest.json.tmp").exists());

        let loaded = Manifest::load(&path).unwrap();
        assert_eq!(loaded, m);
        loaded.verify(&dir).unwrap();

        // Same size, different contents: the checksum must catch it.
        std::fs::write(dir.join("out.csv"), b"x,y\n9,9\n").unwrap();
        let problems = loaded.verify(&dir).unwrap_err();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("checksum"));

        // Missing file.
        std::fs::remove_file(dir.join("out.csv")).unwrap();
        assert!(loaded.verify(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
