//! Quickstart: drive the paper's freeway scenario with the modular
//! pipeline and print the episode summary.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ad_action_attacks::prelude::*;

fn main() {
    // The paper's scenario: a 16 m/s ego vehicle must overtake six 6 m/s
    // NPC vehicles within 180 control steps of 0.1 s.
    let scenario = Scenario::default();
    println!(
        "scenario: {} lanes x {:.0} m, {} NPCs, {} steps of {}s",
        scenario.road.num_lanes,
        scenario.road.length,
        scenario.npcs.len(),
        scenario.max_steps,
        scenario.dt
    );

    // The modular driving pipeline: behaviour planner + PID feedback.
    let mut agent = ModularAgent::new(ModularConfig::default(), scenario.ego_lane);
    let record = run_episode(&mut agent, &scenario, 42, None, |_, _, _| {});

    println!("steps executed ....... {}", record.steps);
    println!("termination .......... {:?}", record.termination);
    println!("NPCs passed .......... {}/6", record.passed);
    println!("nominal reward ....... {:.1}", record.nominal_return);
    println!("deviation RMSE ....... {:.4}", record.deviation_rmse());
    assert!(record.collision.is_none(), "the modular agent drives clean");
}
