//! Train a small camera-based attack policy from scratch (behaviour
//! cloning of the oracle teacher) and watch it attack the modular
//! pipeline at different budgets. Runs in about a minute on a laptop.
//!
//! ```sh
//! cargo run --release --example train_attacker
//! ```

use ad_action_attacks::prelude::*;
use attack_core::sensor::SensorKind;
use attack_core::train::{evaluate_attack_policy, train_camera_attacker, AttackTrainConfig};
use drive_agents::Agent;

fn main() {
    let scenario = Scenario::default();
    let features = FeatureConfig::default();
    let victim = || -> Box<dyn Agent> { Box::new(ModularAgent::new(ModularConfig::default(), 1)) };

    println!("training a camera attack policy (BC from the geometric oracle)...");
    let config = AttackTrainConfig {
        bc_episodes: 20,
        bc_steps: 4000,
        sac_steps: 0, // pure cloning for speed; the harness binaries refine with SAC
        ..AttackTrainConfig::default()
    };
    let t0 = std::time::Instant::now();
    let policy = train_camera_attacker(&victim, &scenario, &features, &config);
    println!("trained in {:.1}s\n", t0.elapsed().as_secs_f64());

    println!("budget  success-rate  mean adversarial return");
    println!("{}", "-".repeat(46));
    for eps in [0.25, 0.5, 0.75, 1.0] {
        let (mean_adv, success) = evaluate_attack_policy(
            &policy,
            &victim,
            &scenario,
            SensorKind::Camera,
            &features,
            &ImuConfig::default(),
            AttackBudget::new(eps),
            10,
            900,
        );
        println!("{eps:<7.2} {:<13.0}% {mean_adv:.1}", success * 100.0);
    }
    println!();
    println!("The learned policy stays quiet outside critical windows (the");
    println!("maneuver penalty p_m) and strikes during I(omega) moments.");
}
