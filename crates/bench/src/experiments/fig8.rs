//! Fig. 8 — attack success rate per attack-effort window for the nominal
//! agent and the four enhanced agents.
//!
//! Re-bins the Fig. 5 (end-to-end series) and Fig. 7 scatter data with
//! window width 0.2 from 0.0 to 0.8+. The paper's finding: fine-tuned
//! agents still show successes at small efforts, PNN agents have the
//! lowest success rates everywhere.

use crate::experiments::fig5::Fig5Result;
use crate::experiments::fig7::Fig7Result;
use crate::harness::AgentKind;
use drive_metrics::export::Csv;
use drive_metrics::report::{fmt_pct, Table};
use drive_metrics::windows::{fig8_windows, EffortWindow};

/// Per-agent windowed success rates.
#[derive(Debug, Clone)]
pub struct Fig8Series {
    /// The agent.
    pub agent: AgentKind,
    /// The five effort windows with success rates.
    pub windows: Vec<EffortWindow>,
}

/// Full Fig. 8 result.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Nominal + four enhanced agents.
    pub series: Vec<Fig8Series>,
}

impl Fig8Result {
    /// The series for an agent, if present.
    pub fn series(&self, agent: AgentKind) -> Option<&Fig8Series> {
        self.series.iter().find(|s| s.agent == agent)
    }
}

/// Builds Fig. 8 from the Fig. 5 and Fig. 7 sweeps (no new episodes).
pub fn run(fig5: &Fig5Result, fig7: &Fig7Result) -> Fig8Result {
    let mut series = Vec::new();
    if let Some(e2e) = fig5.series(AgentKind::E2e) {
        series.push(Fig8Series {
            agent: AgentKind::E2e,
            windows: fig8_windows(&e2e.points),
        });
    }
    for agent in Fig7Result::lineup() {
        if let Some(s) = fig7.series(agent) {
            series.push(Fig8Series {
                agent,
                windows: fig8_windows(&s.points),
            });
        }
    }
    Fig8Result { series }
}

impl Fig8Result {
    /// Exports per-window success rates as CSV.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new(["agent", "window", "success_rate", "count"]);
        for s in &self.series {
            for w in &s.windows {
                csv.row([
                    s.agent.label().to_string(),
                    w.label(),
                    format!("{:.3}", w.success_rate),
                    w.count.to_string(),
                ]);
            }
        }
        csv
    }
}

impl std::fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 8 — attack success rate per attack-effort window")?;
        let labels: Vec<String> = self
            .series
            .first()
            .map(|s| s.windows.iter().map(EffortWindow::label).collect())
            .unwrap_or_default();
        let mut headers = vec!["agent \\ effort".to_string()];
        headers.extend(labels);
        let mut t = Table::new(headers);
        for s in &self.series {
            let mut row = vec![s.agent.label().to_string()];
            for w in &s.windows {
                row.push(if w.count == 0 {
                    "-".into()
                } else {
                    format!("{} ({})", fmt_pct(w.success_rate), w.count)
                });
            }
            t.row(row);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "cells are success rate (episode count); paper: PNN lowest everywhere"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{fig5, fig7};
    use crate::harness::Scale;
    use attack_core::pipeline::{prepare, PipelineConfig};

    #[test]
    fn smoke_fig8_builds_from_sweeps() {
        let dir = std::env::temp_dir().join("repro-bench-fig8-test");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        let f5 = fig5::run(&artifacts, &config, Scale::smoke());
        let f7 = fig7::run(&artifacts, &config, Scale::smoke());
        let f8 = run(&f5, &f7);
        assert_eq!(f8.series.len(), 5);
        for s in &f8.series {
            assert_eq!(s.windows.len(), 5);
            let total: usize = s.windows.iter().map(|w| w.count).sum();
            assert!(total > 0, "{:?} has no points", s.agent);
        }
        let text = format!("{f8}");
        assert!(text.contains("0.8+"));
        assert_eq!(f8.to_csv().len(), 25);
    }
}
