//! Last-rung safety controller for the serving degradation ladder.
//!
//! When the serving pipeline is too overloaded (or too distrusted — the
//! perturbation detector alarming) to run learned inference, the Simplex
//! pattern says: hand control to a small verified controller whose only
//! job is to keep the vehicle safe, not to drive well. This is that
//! controller — PID lane-centering with heading damping plus a gentle
//! brake toward a crawl speed, reading the *raw* current feature frame
//! (no network, no detector, no history). It is pure `f64` arithmetic:
//! deterministic, allocation-free, and cheap enough to never miss a
//! deadline.

use crate::pid::{Pid, PidConfig};
use drive_sim::vehicle::Actuation;
use serde::{Deserialize, Serialize};

/// Gains and targets for the [`SafetyController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyConfig {
    /// PID on the normalized lateral lane offset (feature frame index 0).
    pub steer_pid: PidConfig,
    /// Linear damping on the heading error (frame index 1): steering is
    /// reduced when the vehicle is already turning back toward the lane.
    pub heading_gain: f64,
    /// Target speed as a fraction of the extractor's `speed_norm`
    /// (frame index 2 is `speed / speed_norm`). The fallback slows the
    /// vehicle to this crawl rather than stopping dead in traffic.
    pub crawl_speed: f64,
    /// Proportional brake gain on the speed excess over the crawl target.
    pub brake_gain: f64,
    /// Control period in seconds (feeds the PID derivative/integral).
    pub dt: f64,
}

impl Default for SafetyConfig {
    fn default() -> Self {
        SafetyConfig {
            steer_pid: PidConfig {
                kp: 0.8,
                ki: 0.05,
                kd: 0.3,
                limit: 0.6,
                integral_limit: 0.2,
            },
            heading_gain: 0.5,
            crawl_speed: 0.3,
            brake_gain: 1.5,
            dt: 0.05,
        }
    }
}

/// Simplex fallback: PID lane-centering + gentle braking on raw features.
///
/// Stateful (PID memory), so the serving layer keeps one per worker and
/// calls [`SafetyController::reset`] when the ladder re-engages it after
/// a stretch of full-pipeline operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyController {
    config: SafetyConfig,
    steer: Pid,
}

impl Default for SafetyController {
    fn default() -> Self {
        SafetyController::new(SafetyConfig::default())
    }
}

impl SafetyController {
    /// Builds the controller with zeroed PID state.
    pub fn new(config: SafetyConfig) -> Self {
        SafetyController {
            steer: Pid::new(config.steer_pid),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SafetyConfig {
        &self.config
    }

    /// Clears PID memory. Call when the ladder drops to the fallback rung
    /// so stale integral state from a previous engagement cannot jerk the
    /// wheel.
    pub fn reset(&mut self) {
        self.steer.reset();
    }

    /// Computes a safe actuation from the most recent raw feature frame:
    /// `obs[0]` = normalized lateral lane offset, `obs[1]` = heading,
    /// `obs[2]` = normalized speed (see `drive_sim::sensors`). Extra
    /// elements (NPC features, stacked history) are ignored — the
    /// fallback must work from any observation the full pipeline accepts.
    ///
    /// Steering drives the lane offset to zero with heading damping;
    /// thrust only ever brakes (clamped at 0), easing the vehicle toward
    /// the crawl speed.
    ///
    /// # Panics
    ///
    /// Panics if `obs` has fewer than 3 elements.
    pub fn act(&mut self, obs: &[f32]) -> Actuation {
        assert!(obs.len() >= 3, "safety controller needs lane/heading/speed");
        // Corrupted frames must not steer the fallback: non-finite inputs
        // read as zero, matching the NN path's input sanitization.
        let finite = |v: f32| if v.is_finite() { v as f64 } else { 0.0 };
        let lat = finite(obs[0]).clamp(-2.0, 2.0);
        let heading = finite(obs[1]).clamp(-1.5, 1.5);
        let speed = finite(obs[2]).clamp(-2.0, 2.0);
        let steer = self.steer.step(-lat, self.config.dt) - self.config.heading_gain * heading;
        let over = speed - self.config.crawl_speed;
        let thrust = (-self.config.brake_gain * over).clamp(-1.0, 0.0);
        Actuation::new(steer.clamp(-1.0, 1.0), thrust)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steers_against_lateral_offset() {
        let mut c = SafetyController::default();
        // Drifted left of center (positive offset) -> steer right (negative).
        let a = c.act(&[0.8, 0.0, 0.3]);
        assert!(a.steer < 0.0, "steer {}", a.steer);
        c.reset();
        let a = c.act(&[-0.8, 0.0, 0.3]);
        assert!(a.steer > 0.0, "steer {}", a.steer);
    }

    #[test]
    fn heading_damping_opposes_overshoot() {
        let mut with = SafetyController::default();
        let mut without = SafetyController::default();
        // Same offset, but already rotated back toward the lane: the
        // damped command must be weaker.
        let damped = with.act(&[0.8, -0.4, 0.3]);
        let undamped = without.act(&[0.8, 0.0, 0.3]);
        assert!(
            damped.steer > undamped.steer,
            "{} vs {}",
            damped.steer,
            undamped.steer
        );
    }

    #[test]
    fn brakes_above_crawl_and_coasts_below() {
        let mut c = SafetyController::default();
        let fast = c.act(&[0.0, 0.0, 1.0]);
        assert!(fast.thrust < 0.0, "must brake when fast");
        let slow = c.act(&[0.0, 0.0, 0.1]);
        assert_eq!(slow.thrust, 0.0, "never accelerates");
        assert!(fast.thrust >= -1.0);
    }

    #[test]
    fn outputs_always_bounded() {
        let mut c = SafetyController::default();
        for obs in [
            [10.0f32, -9.0, 8.0],
            [-10.0, 9.0, -8.0],
            [f32::NAN, f32::INFINITY, f32::NEG_INFINITY],
        ] {
            let a = c.act(&obs);
            assert!((-1.0..=1.0).contains(&a.steer), "steer {}", a.steer);
            assert!((-1.0..=0.0).contains(&a.thrust), "thrust {}", a.thrust);
        }
    }

    #[test]
    fn corrupted_frame_reads_as_neutral() {
        let mut c = SafetyController::default();
        let a = c.act(&[f32::NAN, f32::NAN, f32::NAN]);
        assert_eq!(a.steer, 0.0);
        assert_eq!(a.thrust, 0.0);
    }

    #[test]
    fn closed_loop_centers_a_kinematic_cart() {
        // Toy lateral plant: offset' = k * steer, so the negative steer
        // commanded at positive offset pulls the cart back to center.
        let mut c = SafetyController::default();
        let mut offset = 1.0f64;
        for _ in 0..400 {
            let a = c.act(&[offset as f32, 0.0, 0.3]);
            offset = (offset + 0.8 * a.steer * c.config().dt).clamp(-2.0, 2.0);
        }
        assert!(offset.abs() < 0.15, "offset {offset}");
    }

    #[test]
    fn reset_clears_pid_memory() {
        let mut a = SafetyController::default();
        let mut b = SafetyController::default();
        for _ in 0..20 {
            a.act(&[0.5, 0.0, 0.3]);
        }
        a.reset();
        assert_eq!(a.act(&[0.3, 0.1, 0.4]), b.act(&[0.3, 0.1, 0.4]));
    }

    #[test]
    fn extra_observation_elements_are_ignored() {
        let mut short = SafetyController::default();
        let mut long = SafetyController::default();
        let frame = [0.4f32, -0.1, 0.6];
        let mut extended = frame.to_vec();
        extended.extend([9.0f32; 37]);
        assert_eq!(short.act(&frame), long.act(&extended));
    }
}
