#![warn(missing_docs)]

//! # drive-core — shared runtime-robustness primitives
//!
//! Small, dependency-light building blocks used by both the experiment
//! harness (`repro-bench`) and the policy-serving subsystem
//! (`drive-serve`):
//!
//! * [`retry`] — bounded retry with deterministic, seeded jittered
//!   backoff and a typed exhaustion error. The harness uses it for
//!   reseeded per-episode retries; load-generator clients use it for
//!   timeout/backpressure retries.
//! * [`shutdown`] — process-wide SIGTERM/SIGINT latching so long runs
//!   can drain in-flight work and flush journals instead of dying with
//!   half-written state.

pub mod retry;
pub mod shutdown;

pub use retry::{Attempt, Exhausted, RetryPolicy};
pub use shutdown::ShutdownRequested;
