#![warn(missing_docs)]

//! # attack-core — learning-based action-space attacks and defenses
//!
//! The paper's primary contribution: black-box DRL attack policies that
//! perturb the victim's steering-variation channel (camera-based and
//! IMU-based with learning-from-teacher), the adversarial reward that
//! shapes them, and the two defense mechanisms studied in Section VI —
//! adversarial training via fine-tuning and progressive neural networks
//! behind a Simplex-style switcher.

pub mod adv_reward;
pub mod attack_env;
pub mod budget;
pub mod defense;
pub mod detector;
pub mod eval;
pub mod fleet;
pub mod learned;
pub mod oracle;
pub mod pipeline;
pub mod sensor;
pub mod state_attack;
pub mod train;

/// Commonly used items re-exported in one place.
pub mod prelude {
    pub use crate::adv_reward::{AdvReward, AdvRewardConfig};
    pub use crate::attack_env::{AttackEnv, Teacher};
    pub use crate::budget::AttackBudget;
    pub use crate::defense::{
        adversarial_finetune, sample_training_budget, train_pnn_defense, DefenseTrainConfig,
        SimplexSwitcher,
    };
    pub use crate::detector::{
        detection_agreement, DetectorConfig, DetectorSimplexAgent, PerturbationDetector,
    };
    pub use crate::eval::{run_attacked_episode, run_attacked_episodes};
    pub use crate::fleet::{FleetEval, FleetPlan};
    pub use crate::learned::LearnedAttacker;
    pub use crate::oracle::OracleAttacker;
    pub use crate::pipeline::{prepare, Artifacts, PipelineConfig};
    pub use crate::sensor::{AttackerSensor, SensorKind};
    pub use crate::state_attack::{perturb_observation, StateAttackConfig, StateAttackedAgent};
    pub use crate::train::{
        collect_oracle_demos, collect_teacher_demos, evaluate_attack_policy, train_camera_attacker,
        train_imu_attacker, AttackTrainConfig, VictimBuilder,
    };
}
