//! Crash-recovery snapshots for SAC training loops.
//!
//! A [`TrainSnapshot`] captures everything a training run needs to continue
//! bit-exactly after a kill: the learner (networks + optimizers), the loss
//! watchdog's last healthy copy, the replay buffer, the streaming
//! statistics, and — crucially — the *position* of the RNG stream
//! ([`StreamPos`]), not just its seed. Snapshots are only taken at episode
//! boundaries, so the environment itself never needs serializing: resuming
//! replays `env.reset(episode_seed)` and lands in the exact state the
//! original run was in.
//!
//! The on-disk format reuses the drive-nn checkpoint grammar (tagged text
//! sections, trailing FNV checksum, atomic durable writes), so a torn or
//! tampered snapshot surfaces as a typed error and the loop falls back to
//! training from scratch instead of resuming from garbage.

use crate::replay::ReplayBuffer;
use crate::sac::{Sac, SacConfig, SacLosses};
use crate::stats::RunningStats;
use crate::train::TrainStats;
use drive_nn::checkpoint::{self, CheckpointError, Reader};
use drive_seed::StreamPos;
use std::path::{Path, PathBuf};

/// Version tag of the training-snapshot file format.
const SNAPSHOT_VERSION: &str = "v1";

/// Where and how often a training loop snapshots itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotConfig {
    /// Snapshot file path (parent directories are created as needed).
    pub path: PathBuf,
    /// Minimum environment steps between snapshots. Snapshots are taken at
    /// the first episode boundary at least this many steps after the last
    /// one, so larger values trade recovery granularity for I/O.
    pub every_steps: usize,
}

/// A complete mid-training state, restorable to a bit-identical run.
#[derive(Debug, Clone)]
pub struct TrainSnapshot {
    /// Environment steps already executed (the resume loop starts here).
    pub step: usize,
    /// Seed of the episode the resumed loop must `reset` into.
    pub episode_seed: u64,
    /// Hash of the training configuration and environment shapes; a resume
    /// with a different configuration must ignore the snapshot.
    pub config_hash: u64,
    /// Exact RNG stream position at the snapshot point.
    pub rng: StreamPos,
    /// Healthy updates seen by the loss watchdog.
    pub healthy_updates: usize,
    /// Accumulated training statistics.
    pub stats: TrainStats,
    /// The learner.
    pub sac: Sac,
    /// The loss watchdog's last healthy learner copy, if one exists.
    pub last_good: Option<Sac>,
    /// The replay buffer, including its eviction cursor.
    pub buffer: ReplayBuffer,
}

fn write_usizes(buf: &mut String, values: &[usize]) {
    for chunk in values.chunks(16) {
        let mut first = true;
        for v in chunk {
            if !first {
                buf.push(' ');
            }
            buf.push_str(&v.to_string());
            first = false;
        }
        buf.push('\n');
    }
    if values.is_empty() {
        buf.push('\n');
    }
}

impl TrainSnapshot {
    /// Serializes the snapshot to checkpoint text.
    pub fn encode(&self) -> String {
        let mut buf = String::new();
        buf.push_str(&format!("train-snapshot {SNAPSHOT_VERSION}\n"));
        buf.push_str(&format!(
            "meta {} {} {:016x} {}\n",
            self.step, self.episode_seed, self.config_hash, self.healthy_updates
        ));
        buf.push_str(&format!("rng {}\n", self.rng.to_hex()));
        buf.push_str(&format!(
            "stats {} {}\n",
            self.stats.steps, self.stats.rollbacks
        ));
        let (n, mean, m2, min, max) = self.stats.return_stats.raw_parts();
        buf.push_str(&format!("running {n} {mean} {m2} {min} {max}\n"));
        let l = self.stats.last_losses;
        buf.push_str(&format!(
            "losses {} {} {} {} {}\n",
            l.q1_loss, l.q2_loss, l.actor_loss, l.alpha, l.entropy
        ));
        buf.push_str(&format!("returns {}\n", self.stats.episode_returns.len()));
        checkpoint::encode_floats(&mut buf, &self.stats.episode_returns);
        buf.push_str(&format!("lengths {}\n", self.stats.episode_lengths.len()));
        write_usizes(&mut buf, &self.stats.episode_lengths);
        self.sac.encode_state_into(&mut buf);
        match &self.last_good {
            Some(snapshot) => {
                buf.push_str("last_good 1\n");
                snapshot.encode_state_into(&mut buf);
            }
            None => buf.push_str("last_good 0\n"),
        }
        self.buffer.encode_into(&mut buf);
        buf
    }

    /// Parses a snapshot. The SAC hyper-parameters are supplied by the
    /// caller (they are part of the code/config, not the state) and checked
    /// indirectly through [`TrainSnapshot::config_hash`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Version`] for files written by a
    /// different format revision, [`CheckpointError::Parse`] on any
    /// structural mismatch.
    pub fn decode(text: &str, sac_config: SacConfig) -> Result<Self, CheckpointError> {
        let parse_err = CheckpointError::Parse;
        let mut r = Reader::new(text);
        let args = r.expect_tag("train-snapshot")?;
        let version = *args
            .first()
            .ok_or_else(|| parse_err("train-snapshot tag needs a version".into()))?;
        if version != SNAPSHOT_VERSION {
            return Err(CheckpointError::Version {
                found: version.to_string(),
                expected: SNAPSHOT_VERSION,
            });
        }
        let meta = r.expect_tag("meta")?;
        if meta.len() != 4 {
            return Err(parse_err(
                "meta needs '<step> <episode_seed> <config_hash> <healthy_updates>'".into(),
            ));
        }
        let step: usize = meta[0]
            .parse()
            .map_err(|_| parse_err(format!("bad step '{}'", meta[0])))?;
        let episode_seed: u64 = meta[1]
            .parse()
            .map_err(|_| parse_err(format!("bad episode seed '{}'", meta[1])))?;
        let config_hash = u64::from_str_radix(meta[2], 16)
            .map_err(|_| parse_err(format!("bad config hash '{}'", meta[2])))?;
        let healthy_updates: usize = meta[3]
            .parse()
            .map_err(|_| parse_err(format!("bad healthy-update count '{}'", meta[3])))?;
        let rng_args = r.expect_tag("rng")?;
        let rng = StreamPos::from_hex(
            rng_args
                .first()
                .ok_or_else(|| parse_err("rng tag needs a position".into()))?,
        )
        .map_err(CheckpointError::Parse)?;
        let stats_args = r.expect_tag("stats")?;
        if stats_args.len() != 2 {
            return Err(parse_err("stats needs '<steps> <rollbacks>'".into()));
        }
        let steps: usize = stats_args[0]
            .parse()
            .map_err(|_| parse_err(format!("bad step count '{}'", stats_args[0])))?;
        let rollbacks: usize = stats_args[1]
            .parse()
            .map_err(|_| parse_err(format!("bad rollback count '{}'", stats_args[1])))?;
        let run_args = r.expect_tag("running")?;
        if run_args.len() != 5 {
            return Err(parse_err(
                "running needs '<n> <mean> <m2> <min> <max>'".into(),
            ));
        }
        let n: u64 = run_args[0]
            .parse()
            .map_err(|_| parse_err(format!("bad sample count '{}'", run_args[0])))?;
        let mut f64s = [0.0f64; 4];
        for (dst, tok) in f64s.iter_mut().zip(&run_args[1..5]) {
            *dst = tok
                .parse()
                .map_err(|_| parse_err(format!("bad running statistic '{tok}'")))?;
        }
        let return_stats = RunningStats::from_raw_parts(n, f64s[0], f64s[1], f64s[2], f64s[3]);
        let loss_args = r.expect_tag("losses")?;
        if loss_args.len() != 5 {
            return Err(parse_err("losses needs 5 values".into()));
        }
        let mut f32s = [0.0f32; 5];
        for (dst, tok) in f32s.iter_mut().zip(&loss_args) {
            *dst = tok
                .parse()
                .map_err(|_| parse_err(format!("bad loss '{tok}'")))?;
        }
        let last_losses = SacLosses {
            q1_loss: f32s[0],
            q2_loss: f32s[1],
            actor_loss: f32s[2],
            alpha: f32s[3],
            entropy: f32s[4],
        };
        let ret_args = r.expect_tag("returns")?;
        let nret: usize = ret_args
            .first()
            .ok_or_else(|| parse_err("returns tag needs a count".into()))?
            .parse()
            .map_err(|_| parse_err("bad return count".into()))?;
        let episode_returns = r.floats(nret)?;
        let len_args = r.expect_tag("lengths")?;
        let nlen: usize = len_args
            .first()
            .ok_or_else(|| parse_err("lengths tag needs a count".into()))?
            .parse()
            .map_err(|_| parse_err("bad length count".into()))?;
        let episode_lengths = r.usizes(nlen)?;
        let sac = Sac::decode_state_from(&mut r, sac_config)?;
        let lg_args = r.expect_tag("last_good")?;
        let last_good = match lg_args.first() {
            Some(&"1") => Some(Sac::decode_state_from(&mut r, sac_config)?),
            Some(&"0") => None,
            other => {
                return Err(parse_err(format!(
                    "last_good must be 0 or 1, found {other:?}"
                )))
            }
        };
        let buffer = ReplayBuffer::decode_from(&mut r)?;
        Ok(TrainSnapshot {
            step,
            episode_seed,
            config_hash,
            rng,
            healthy_updates,
            stats: TrainStats {
                episode_returns,
                episode_lengths,
                last_losses,
                steps,
                return_stats,
                rollbacks,
            },
            sac,
            last_good,
            buffer,
        })
    }

    /// Writes the snapshot atomically and durably (temp file + fsync +
    /// rename + parent-directory fsync, trailing checksum line).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        checkpoint::save_to_file(path, &self.encode())
    }

    /// Loads and verifies a snapshot file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; returns [`CheckpointError::Corrupt`] on a
    /// checksum mismatch and the decode errors described on
    /// [`TrainSnapshot::decode`].
    pub fn load(path: impl AsRef<Path>, sac_config: SacConfig) -> Result<Self, CheckpointError> {
        Self::decode(&checkpoint::load_from_file(path)?, sac_config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_snapshot() -> (TrainSnapshot, SacConfig) {
        let mut rng = StdRng::seed_from_u64(21);
        let config = SacConfig {
            batch_size: 8,
            ..SacConfig::default()
        };
        let sac = Sac::new(2, 1, &[8], config, &mut rng);
        let mut buffer = ReplayBuffer::new(32, 2, 1);
        for i in 0..10 {
            let x = i as f32 * 0.1;
            buffer.push(crate::replay::Transition {
                obs: vec![x, -x],
                action: vec![x],
                reward: -x,
                next_obs: vec![x + 0.1, -x],
                terminal: i % 4 == 0,
            });
        }
        let mut return_stats = RunningStats::new();
        return_stats.push(-3.5);
        return_stats.push(1.25);
        let snap = TrainSnapshot {
            step: 123,
            episode_seed: 9,
            config_hash: 0xdead_beef_cafe_f00d,
            rng: StreamPos::capture(&StdRng::seed_from_u64(5)),
            healthy_updates: 7,
            stats: TrainStats {
                episode_returns: vec![-3.5, 1.25],
                episode_lengths: vec![40, 83],
                last_losses: SacLosses {
                    q1_loss: 0.5,
                    q2_loss: 0.25,
                    actor_loss: -1.5,
                    alpha: 0.1,
                    entropy: 0.9,
                },
                steps: 123,
                return_stats,
                rollbacks: 1,
            },
            sac: sac.clone(),
            last_good: Some(sac),
            buffer,
        };
        (snap, config)
    }

    #[test]
    fn encode_decode_round_trips_every_field() {
        let (snap, config) = sample_snapshot();
        let text = snap.encode();
        let back = TrainSnapshot::decode(&text, config).expect("round trip");
        assert_eq!(back.step, snap.step);
        assert_eq!(back.episode_seed, snap.episode_seed);
        assert_eq!(back.config_hash, snap.config_hash);
        assert_eq!(back.rng, snap.rng);
        assert_eq!(back.healthy_updates, snap.healthy_updates);
        assert_eq!(back.stats.episode_returns, snap.stats.episode_returns);
        assert_eq!(back.stats.episode_lengths, snap.stats.episode_lengths);
        assert_eq!(back.stats.last_losses, snap.stats.last_losses);
        assert_eq!(back.stats.steps, snap.stats.steps);
        assert_eq!(back.stats.rollbacks, snap.stats.rollbacks);
        assert_eq!(
            back.stats.return_stats.raw_parts(),
            snap.stats.return_stats.raw_parts()
        );
        assert!(back.last_good.is_some());
        assert_eq!(back.buffer.len(), snap.buffer.len());
        // Empty-stats extremes (min = inf, max = -inf) survive the text
        // round trip too.
        let mut empty = snap.clone();
        empty.stats.return_stats = RunningStats::new();
        let back = TrainSnapshot::decode(&empty.encode(), config).expect("inf round trip");
        assert_eq!(
            back.stats.return_stats.raw_parts(),
            empty.stats.return_stats.raw_parts()
        );
    }

    #[test]
    fn save_load_round_trips_with_checksum() {
        let (snap, config) = sample_snapshot();
        let dir = std::env::temp_dir().join("drive-rl-snapshot-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("train.snap");
        snap.save(&path).expect("save");
        let back = TrainSnapshot::load(&path, config).expect("load");
        assert_eq!(back.step, snap.step);
        // Corrupting a byte turns the load into a typed Corrupt error.
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, raw.replacen("meta", "mata", 1)).unwrap();
        assert!(matches!(
            TrainSnapshot::load(&path, config),
            Err(CheckpointError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_typed() {
        let (snap, config) = sample_snapshot();
        let text = snap
            .encode()
            .replacen("train-snapshot v1", "train-snapshot v0", 1);
        match TrainSnapshot::decode(&text, config) {
            Err(CheckpointError::Version { found, .. }) => assert_eq!(found, "v0"),
            other => panic!("expected Version error, got {other:?}"),
        }
    }
}
