//! Fig. 6 — nominal driving reward of the original and enhanced agents
//! under camera attacks.
//!
//! Box plots per budget `{0, 0.25, 0.5, 0.75, 1.0}` for `pi_ori`, the two
//! fine-tuned agents, and the two PNN agents. The paper's findings:
//! fine-tuning improves attacked performance but degrades the nominal
//! (`eps <= 0.25`) cases; PNN keeps nominal performance intact.

use crate::engine::{Experiment, ExperimentOutput, RunContext};
use crate::harness::{attacked_records, AgentKind};
use attack_core::budget::AttackBudget;
use attack_core::sensor::SensorKind;
use drive_metrics::agg::BoxStats;
use drive_metrics::episode::CellSummary;
use drive_metrics::export::Csv;
use drive_metrics::report::{fmt_f, Table};
use drive_metrics::svg::box_plot_svg;
use std::sync::Arc;

/// One (agent, budget) cell.
#[derive(Debug, Clone)]
pub struct Fig6Cell {
    /// The evaluated agent.
    pub agent: AgentKind,
    /// Attack budget.
    pub budget: f64,
    /// Aggregated statistics.
    pub summary: CellSummary,
}

/// Full Fig. 6 result.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// All cells, agents x budgets.
    pub cells: Vec<Fig6Cell>,
}

impl Fig6Result {
    /// Nominal-reward box of one cell.
    pub fn nominal_box(&self, agent: AgentKind, budget: f64) -> Option<&BoxStats> {
        self.cells
            .iter()
            .find(|c| c.agent == agent && (c.budget - budget).abs() < 1e-9)
            .map(|c| &c.summary.nominal)
    }
}

impl Fig6Result {
    /// Exports all cells as CSV.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new([
            "agent",
            "budget",
            "nominal_min",
            "nominal_q1",
            "nominal_median",
            "nominal_q3",
            "nominal_max",
            "nominal_mean",
            "success_rate",
            "episodes",
        ]);
        for c in &self.cells {
            let n = &c.summary.nominal;
            csv.row([
                c.agent.label().to_string(),
                format!("{:.2}", c.budget),
                format!("{:.3}", n.min),
                format!("{:.3}", n.q1),
                format!("{:.3}", n.median),
                format!("{:.3}", n.q3),
                format!("{:.3}", n.max),
                format!("{:.3}", n.mean),
                format!("{:.3}", c.summary.success_rate),
                c.summary.episodes.to_string(),
            ]);
        }
        csv
    }

    /// Builds the Fig. 6 nominal-reward box plot.
    pub fn to_svgs(&self) -> Vec<(String, String)> {
        let budgets: Vec<String> = AttackBudget::fig4_grid()
            .iter()
            .map(|b| format!("{b}"))
            .collect();
        let series: Vec<(String, Vec<BoxStats>)> = AgentKind::enhanced_lineup()
            .into_iter()
            .map(|agent| {
                let boxes = AttackBudget::fig4_grid()
                    .iter()
                    .filter_map(|b| self.nominal_box(agent, b.epsilon()).copied())
                    .collect();
                (agent.label().to_string(), boxes)
            })
            .collect();
        vec![(
            "fig6_nominal".to_string(),
            box_plot_svg(
                "Fig. 6 — nominal reward of original and enhanced agents",
                &budgets,
                &series,
                "attack budget",
                "nominal driving reward",
            ),
        )]
    }
}

/// Runs (or reuses) the Fig. 6 experiment via the context memo.
///
/// All 25 (agent, budget) cells are independent and run in parallel off
/// per-cell seed subtrees (`root/fig6/<agent>/eps<budget>`); `par_map`
/// keeps them in lineup-then-budget order for any worker count.
pub fn run(ctx: &RunContext) -> Arc<Fig6Result> {
    ctx.memo("fig6", || {
        let ns = ctx.seeds_for("fig6");
        let mut grid = Vec::new();
        for agent in AgentKind::enhanced_lineup() {
            for budget in AttackBudget::fig4_grid() {
                grid.push((agent, budget));
            }
        }
        let cells = drive_par::par_map(&grid, |_, &(agent, budget)| {
            let attack = if budget.is_zero() {
                None
            } else {
                Some((&ctx.artifacts.camera_attacker, SensorKind::Camera))
            };
            let seeds = ns
                .child(agent.label())
                .child(format!("eps{:.2}", budget.epsilon()));
            let records =
                attacked_records(agent, attack, budget, ctx, ctx.scale.box_episodes, &seeds);
            Fig6Cell {
                agent,
                budget: budget.epsilon(),
                summary: CellSummary::from_records(&records),
            }
        });
        Fig6Result { cells }
    })
}

/// Registry entry for Fig. 6.
pub struct Fig6Experiment;

impl Experiment for Fig6Experiment {
    fn name(&self) -> &'static str {
        "fig6"
    }

    fn description(&self) -> &'static str {
        "Nominal reward of the original and enhanced agents under camera attacks"
    }

    fn cells(&self) -> usize {
        AgentKind::enhanced_lineup().len() * AttackBudget::fig4_grid().len()
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let r = run(ctx);
        ExperimentOutput {
            report: r.to_string(),
            csvs: vec![("fig6".to_string(), r.to_csv())],
            svgs: r.to_svgs(),
        }
    }
}

impl std::fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 6 — nominal driving reward of original and enhanced agents (camera attack)"
        )?;
        let budgets = AttackBudget::fig4_grid();
        let mut headers = vec!["agent \\ eps".to_string()];
        headers.extend(budgets.iter().map(|b| fmt_f(b.epsilon(), 2)));
        let mut t = Table::new(headers);
        for agent in AgentKind::enhanced_lineup() {
            let mut row = vec![agent.label().to_string()];
            for b in &budgets {
                let cell = self
                    .nominal_box(agent, b.epsilon())
                    .map(|s| format!("{} ({})", fmt_f(s.mean, 0), fmt_f(s.median, 0)))
                    .unwrap_or_else(|| "-".into());
                row.push(cell);
            }
            t.row(row);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "cells are mean (median) nominal reward over the episode batch"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;
    use attack_core::pipeline::{prepare, PipelineConfig};

    #[test]
    fn smoke_fig6_covers_lineup_and_budgets() {
        let dir = std::env::temp_dir().join("repro-bench-fig6-test");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        let ctx = RunContext::new(&artifacts, &config, Scale::smoke());
        let result = run(&ctx);
        assert_eq!(result.cells.len(), 5 * 5);
        assert!(result.nominal_box(AgentKind::PnnSigma02, 0.0).is_some());
        let text = format!("{result}");
        assert!(text.contains("pi_pnn(sigma=0.4)"));
        assert_eq!(result.to_csv().len(), 25);
        assert_eq!(result.to_svgs().len(), 1);
    }
}
