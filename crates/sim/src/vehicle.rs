//! Vehicle dynamics: kinematic bicycle model with first-order actuator
//! smoothing.
//!
//! Both driving agents in the paper command *variations* of the actuation
//! rather than raw values; the realized actuation follows the paper's Eq. (1):
//!
//! ```text
//! a_t^steer  = (1 - alpha) * nu_t    + alpha * a_{t-1}^steer,   nu    in [-eps, eps]
//! a_t^thrust = (1 - eta)   * gamma_t + eta   * a_{t-1}^thrust,  gamma in [-eps, eps]
//! ```
//!
//! where `eps` is the mechanical limit (1.0 in normalized units). The
//! action-space attack of the paper perturbs `nu_t` *before* this smoothing
//! is applied — see [`attack-core`](../index.html).

use crate::geometry::{normalize_angle, Obb, Pose, Vec2};
use serde::{Deserialize, Serialize};

/// Normalized actuation pair in `[-1, 1]^2`.
///
/// `steer`: negative turns left in CARLA's convention — we adopt the
/// mathematical convention instead (positive steer = CCW = left) and keep the
/// sign handling internal to the controllers, so agents never need to care.
/// `thrust`: positive throttles, negative brakes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Actuation {
    /// Normalized steering in `[-1, 1]`; multiplied by
    /// [`VehicleParams::max_steer`] to obtain the road-wheel angle.
    pub steer: f64,
    /// Normalized thrust in `[-1, 1]`; positive throttle, negative brake.
    pub thrust: f64,
}

impl Actuation {
    /// Creates an actuation, clamping both channels to `[-1, 1]`.
    pub fn new(steer: f64, thrust: f64) -> Self {
        Actuation {
            steer: steer.clamp(-1.0, 1.0),
            thrust: thrust.clamp(-1.0, 1.0),
        }
    }
}

/// Physical and actuator parameters of a vehicle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VehicleParams {
    /// Distance from the center of gravity to the front axle, meters.
    pub lf: f64,
    /// Distance from the center of gravity to the rear axle, meters.
    pub lr: f64,
    /// Collision footprint length, meters.
    pub length: f64,
    /// Collision footprint width, meters.
    pub width: f64,
    /// Maximum road-wheel steering angle, radians (the paper's 70 degrees).
    pub max_steer: f64,
    /// Maximum forward acceleration at full throttle, m/s^2.
    pub max_accel: f64,
    /// Maximum deceleration at full brake, m/s^2 (positive number).
    pub max_brake: f64,
    /// Speed-proportional drag coefficient, 1/s.
    pub drag: f64,
    /// Top speed, m/s.
    pub max_speed: f64,
    /// Friction-limited lateral acceleration, m/s^2. The kinematic bicycle
    /// would otherwise realize arbitrarily large lateral accelerations at
    /// speed; real tires (and CARLA's dynamic model) saturate near 8 m/s^2.
    pub max_lat_accel: f64,
    /// Steering retain rate `alpha` of Eq. (1).
    pub alpha: f64,
    /// Thrust retain rate `eta` of Eq. (1).
    pub eta: f64,
    /// Mechanical limit `eps` on the per-step variation commands.
    pub eps_mech: f64,
}

impl Default for VehicleParams {
    /// A mid-size sedan comparable to CARLA's default ego vehicle.
    fn default() -> Self {
        VehicleParams {
            lf: 1.4,
            lr: 1.4,
            length: 4.5,
            width: 1.9,
            max_steer: 70.0_f64.to_radians(),
            max_accel: 3.5,
            max_brake: 7.0,
            drag: 0.05,
            max_speed: 30.0,
            max_lat_accel: 8.0,
            alpha: 0.6,
            eta: 0.4,
            eps_mech: 1.0,
        }
    }
}

impl VehicleParams {
    /// Wheelbase `lf + lr`.
    pub fn wheelbase(&self) -> f64 {
        self.lf + self.lr
    }
}

/// Inertial quantities produced during one integration substep, consumed by
/// the IMU sensor model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct InertialSample {
    /// Longitudinal (body-frame x) acceleration, m/s^2.
    pub accel_lon: f64,
    /// Lateral (body-frame y) acceleration, m/s^2.
    pub accel_lat: f64,
    /// Yaw rate, rad/s.
    pub yaw_rate: f64,
}

/// Full dynamic state of a vehicle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vehicle {
    /// Physical parameters.
    pub params: VehicleParams,
    /// Pose of the center of gravity.
    pub pose: Pose,
    /// Forward speed, m/s (non-negative; this model does not reverse).
    pub speed: f64,
    /// Realized (post-smoothing) actuation `a_t` of Eq. (1).
    pub actuation: Actuation,
    /// Inertial quantities from the most recent substeps (for IMU sampling).
    pub inertial: Vec<InertialSample>,
}

impl Vehicle {
    /// Creates a vehicle at rest-less: positioned at `pose` moving at `speed`.
    pub fn new(params: VehicleParams, pose: Pose, speed: f64) -> Self {
        Vehicle {
            params,
            pose,
            speed: speed.max(0.0),
            actuation: Actuation::default(),
            inertial: Vec::new(),
        }
    }

    /// The vehicle's collision footprint.
    pub fn obb(&self) -> Obb {
        Obb::new(
            self.pose.position,
            self.params.length,
            self.params.width,
            self.pose.heading,
        )
    }

    /// World-frame velocity vector.
    pub fn velocity(&self) -> Vec2 {
        self.pose.forward() * self.speed
    }

    /// Applies the Eq. (1) first-order actuation retain to a variation
    /// command and returns the resulting steering angle `delta` (radians).
    ///
    /// This is the control half of [`Vehicle::step`], split out so the
    /// batched integrator in [`crate::batch`] shares the exact smoothing
    /// arithmetic (clamp order included) with the serial path.
    pub(crate) fn apply_variation(&mut self, variation: Actuation) -> f64 {
        let p = self.params.clone();
        let eps = p.eps_mech;
        let nu = variation.steer.clamp(-eps, eps);
        let gamma = variation.thrust.clamp(-eps, eps);

        // Eq. (1): first-order retain of the previous actuation.
        self.actuation.steer =
            ((1.0 - p.alpha) * nu + p.alpha * self.actuation.steer).clamp(-1.0, 1.0);
        self.actuation.thrust =
            ((1.0 - p.eta) * gamma + p.eta * self.actuation.thrust).clamp(-1.0, 1.0);

        self.actuation.steer * p.max_steer
    }

    /// Applies variation commands through Eq. (1) and integrates the bicycle
    /// model over `dt` seconds using `substeps` Euler substeps.
    ///
    /// `variation` carries `(nu_t, gamma_t)`; both are clamped to the
    /// mechanical limit `[-eps_mech, eps_mech]` before smoothing, exactly as
    /// the paper specifies. Inertial samples for the IMU are recorded per
    /// substep.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `substeps == 0`.
    pub fn step(&mut self, variation: Actuation, dt: f64, substeps: usize) {
        assert!(dt > 0.0, "dt must be positive");
        assert!(substeps > 0, "need at least one substep");
        let delta = self.apply_variation(variation);
        let p = self.params.clone();
        let h = dt / substeps as f64;
        self.inertial.clear();
        for _ in 0..substeps {
            let drive = if self.actuation.thrust >= 0.0 {
                self.actuation.thrust * p.max_accel
            } else {
                self.actuation.thrust * p.max_brake
            };
            let accel = drive - p.drag * self.speed;
            let new_speed = (self.speed + accel * h).clamp(0.0, p.max_speed);
            let realized_accel = (new_speed - self.speed) / h;
            self.speed = new_speed;

            // Kinematic bicycle with slip angle beta at the CoG, with the
            // yaw rate saturated by the tire-friction lateral-acceleration
            // limit (|v * yaw_rate| <= max_lat_accel).
            let beta = (p.lr / p.wheelbase() * delta.tan()).atan();
            let mut yaw_rate = self.speed * beta.cos() * delta.tan() / p.wheelbase();
            if self.speed > 0.1 {
                let cap = p.max_lat_accel / self.speed;
                yaw_rate = yaw_rate.clamp(-cap, cap);
            }
            let course = self.pose.heading + beta;
            self.pose.position += Vec2::from_angle(course) * (self.speed * h);
            self.pose.heading = normalize_angle(self.pose.heading + yaw_rate * h);

            self.inertial.push(InertialSample {
                accel_lon: realized_accel,
                accel_lat: self.speed * yaw_rate,
                yaw_rate,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(speed: f64) -> Vehicle {
        Vehicle::new(VehicleParams::default(), Pose::new(0.0, 0.0, 0.0), speed)
    }

    #[test]
    fn straight_driving_preserves_heading_and_lateral() {
        let mut v = fresh(16.0);
        for _ in 0..50 {
            v.step(Actuation::new(0.0, 0.0), 0.1, 5);
        }
        assert!(v.pose.heading.abs() < 1e-9);
        assert!(v.pose.position.y.abs() < 1e-9);
        assert!(v.pose.position.x > 50.0);
    }

    #[test]
    fn drag_decays_speed_without_thrust() {
        let mut v = fresh(16.0);
        for _ in 0..100 {
            v.step(Actuation::new(0.0, 0.0), 0.1, 5);
        }
        assert!(v.speed < 16.0);
        assert!(v.speed > 0.0);
    }

    #[test]
    fn throttle_accelerates_brake_decelerates() {
        let mut v = fresh(10.0);
        v.step(Actuation::new(0.0, 1.0), 0.1, 5);
        let after_throttle = v.speed;
        assert!(after_throttle > 10.0);

        let mut w = fresh(10.0);
        for _ in 0..5 {
            w.step(Actuation::new(0.0, -1.0), 0.1, 5);
        }
        assert!(w.speed < 10.0);
    }

    #[test]
    fn speed_never_negative_under_full_brake() {
        let mut v = fresh(2.0);
        for _ in 0..50 {
            v.step(Actuation::new(0.0, -1.0), 0.1, 5);
        }
        assert_eq!(v.speed, 0.0);
    }

    #[test]
    fn positive_steer_turns_left() {
        let mut v = fresh(10.0);
        for _ in 0..10 {
            v.step(Actuation::new(0.5, 0.0), 0.1, 5);
        }
        assert!(v.pose.heading > 0.0);
        assert!(v.pose.position.y > 0.0);
    }

    #[test]
    fn actuation_smoothing_matches_eq1() {
        let mut v = fresh(10.0);
        let p = v.params.clone();
        // One step with nu = 1: a_1 = (1 - alpha) * 1 + alpha * 0.
        v.step(Actuation::new(1.0, 0.0), 0.1, 1);
        assert!((v.actuation.steer - (1.0 - p.alpha)).abs() < 1e-12);
        // Second step with nu = 0: a_2 = alpha * a_1.
        v.step(Actuation::new(0.0, 0.0), 0.1, 1);
        assert!((v.actuation.steer - p.alpha * (1.0 - p.alpha)).abs() < 1e-12);
    }

    #[test]
    fn actuation_converges_to_sustained_command() {
        let mut v = fresh(0.0);
        for _ in 0..200 {
            v.step(Actuation::new(0.8, 0.0), 0.1, 1);
        }
        assert!((v.actuation.steer - 0.8).abs() < 1e-6);
    }

    #[test]
    fn variation_clamped_to_mechanical_limit() {
        let mut v = fresh(0.0);
        v.params.eps_mech = 0.5;
        v.step(Actuation::new(1.0, 0.0), 0.1, 1);
        // Actuation::new clamps to [-1,1] first; step clamps to eps_mech.
        let expected = (1.0 - v.params.alpha) * 0.5;
        assert!((v.actuation.steer - expected).abs() < 1e-12);
    }

    #[test]
    fn inertial_samples_recorded_per_substep() {
        let mut v = fresh(10.0);
        v.step(Actuation::new(0.2, 0.5), 0.1, 5);
        assert_eq!(v.inertial.len(), 5);
        // Throttling: positive longitudinal acceleration.
        assert!(v.inertial[0].accel_lon > 0.0);
        // Turning left: positive yaw rate and lateral acceleration.
        assert!(v.inertial.iter().any(|s| s.yaw_rate > 0.0));
    }

    #[test]
    fn obb_tracks_pose() {
        let mut v = fresh(10.0);
        v.step(Actuation::new(0.0, 0.0), 0.1, 5);
        let obb = v.obb();
        assert_eq!(obb.center, v.pose.position);
        assert!((obb.half_extents.x - v.params.length / 2.0).abs() < 1e-12);
    }

    #[test]
    fn circular_motion_radius_roughly_matches_theory() {
        // Constant steering at low speed: the vehicle should trace a circle
        // of radius ~ L / tan(delta).
        let mut v = fresh(5.0);
        v.params.drag = 0.0;
        // Pre-converge the actuator.
        for _ in 0..100 {
            v.step(Actuation::new(0.2, 0.0), 0.1, 5);
        }
        let delta = 0.2 * v.params.max_steer;
        let expected_yaw_rate = {
            let beta = (v.params.lr / v.params.wheelbase() * delta.tan()).atan();
            v.speed * beta.cos() * delta.tan() / v.params.wheelbase()
        };
        let got = v.inertial.last().unwrap().yaw_rate;
        assert!(
            (got - expected_yaw_rate).abs() < 0.05 * expected_yaw_rate.abs(),
            "yaw rate {got} vs expected {expected_yaw_rate}"
        );
    }
}
