#![warn(missing_docs)]

//! # drive-rl — soft actor-critic substrate
//!
//! Off-policy reinforcement learning sized for this reproduction: the
//! [`env::Env`] trait implemented by both the driving task and the attacker
//! task, a uniform [`replay::ReplayBuffer`], the full [`sac::Sac`] learner
//! (twin critics, Polyak targets, automatic entropy temperature), behaviour
//! cloning ([`bc`]) for privileged warm starts, and training/evaluation
//! loops ([`train`]).
//!
//! ```
//! use drive_rl::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let sac = Sac::new(4, 2, &[32, 32], SacConfig::default(), &mut rng);
//! assert_eq!(sac.action_dim(), 2);
//! ```

pub mod actor;
pub mod bc;
pub mod env;
pub mod perf;
pub mod replay;
pub mod sac;
pub mod snapshot;
pub mod stats;
pub mod train;

/// Commonly used items re-exported in one place.
pub mod prelude {
    pub use crate::actor::{Actor, ActorSample};
    pub use crate::bc::{clone_policy, BcConfig, Demonstrations};
    pub use crate::env::{rollout, Env, EnvStep};
    pub use crate::replay::{Batch, ReplayBuffer, Transition};
    pub use crate::sac::{Sac, SacConfig, SacLosses};
    pub use crate::snapshot::{SnapshotConfig, TrainSnapshot};
    pub use crate::stats::{Ema, RunningStats};
    pub use crate::train::{
        evaluate, train_sac, train_sac_resumable, EvalStats, TrainConfig, TrainStats,
    };
}
