//! Runs every experiment in sequence (baseline, Fig. 4–8, ablations).

fn main() {
    repro_bench::cli::run_experiment("all");
}
