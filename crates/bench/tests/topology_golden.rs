//! Golden guard for the road-topology refactor.
//!
//! The default scenario is still the paper's straight freeway, and every
//! x-aware road query collapses to the legacy straight-road formulas
//! there — so the figure artifacts must be byte-identical to the CSV
//! captured before the topology abstraction landed. This test replays the
//! fig4 smoke/quick run through the engine, serially and via the
//! `--fleet`-style batched path, and compares against the checked-in
//! fixture. If it fails, the refactor changed the default freeway's
//! numerics — that is a bug, not a re-bless.

use attack_core::pipeline::{prepare, Artifacts, PipelineConfig};
use repro_bench::engine::{self, Registry, RunContext};
use repro_bench::harness::Scale;
use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

/// One quick-trained artifact set shared by both runs.
fn setup() -> (&'static Artifacts, &'static PipelineConfig) {
    static SETUP: OnceLock<(Artifacts, PipelineConfig)> = OnceLock::new();
    let (a, c) = SETUP.get_or_init(|| {
        let dir = std::env::temp_dir().join("repro-bench-topology-golden-test");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        (artifacts, config)
    });
    (a, c)
}

fn out_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-bench-topology-golden-{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fixture() -> String {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/fig4_smoke_quick_golden.csv");
    fs::read_to_string(path).expect("pre-refactor fixture is checked in")
}

fn fig4_csv(fleet: Option<usize>, dir_tag: &str) -> String {
    let (artifacts, config) = setup();
    let dir = out_dir(dir_tag);
    let mut ctx = RunContext::new(artifacts, config, Scale::smoke());
    ctx.csv_dir = Some(dir.clone());
    ctx.fleet = fleet;
    let exp = Registry::find("fig4").expect("registered");
    engine::execute(exp, &ctx).expect("engine run");
    fs::read_to_string(dir.join("fig4.csv")).expect("fig4 csv written")
}

#[test]
fn fig4_serial_is_byte_identical_to_pre_refactor_golden() {
    assert_eq!(
        fig4_csv(None, "serial"),
        fixture(),
        "default-freeway fig4 CSV must not change; do not re-bless"
    );
}

#[test]
fn fig4_fleet16_is_byte_identical_to_pre_refactor_golden() {
    assert_eq!(
        fig4_csv(Some(16), "fleet16"),
        fixture(),
        "fleet-batched fig4 CSV must not change; do not re-bless"
    );
}
