#![warn(missing_docs)]

//! # drive-metrics — evaluation metrics and aggregation
//!
//! Turns raw [`drive_sim::record::EpisodeRecord`]s into exactly the
//! quantities the paper's figures plot: box statistics of nominal /
//! adversarial rewards (Fig. 4, Fig. 6), deviation-vs-effort scatter points
//! with success marking and dominance thresholds (Fig. 5, Fig. 7),
//! attack-effort windows with per-window success rates (Fig. 8), and the
//! §V-B attack-to-collision timing statistics.

pub mod agg;
pub mod episode;
pub mod export;
pub mod histo;
pub mod progress;
pub mod report;
pub mod svg;
pub mod windows;

/// Commonly used items re-exported in one place.
pub mod prelude {
    pub use crate::agg::{mean, quantile, std_dev, BoxStats};
    pub use crate::episode::{
        dominance_threshold, scatter_points, time_to_collision_stats, CellSummary, ScatterPoint,
    };
    pub use crate::export::{Csv, CsvSink};
    pub use crate::histo::LatencyHistogram;
    pub use crate::progress::WorkerProgress;
    pub use crate::report::{fmt_f, fmt_pct, Table};
    pub use crate::svg::{bar_chart_svg, box_plot_svg, scatter_svg, write_svg};
    pub use crate::windows::{effort_windows, fig8_windows, EffortWindow};
}
