//! Diagnoses behaviour-cloning quality against the current modular
//! teacher at a few training budgets (return / passed / collision kinds).
//!
//! ```sh
//! cargo run --release -p drive-agents --example bc_check
//! ```
use drive_agents::prelude::*;
use drive_sim::prelude::*;

fn main() {
    let scenario = Scenario::default();
    let features = FeatureConfig::default();
    for (eps, steps, noise) in [(80usize, 10000usize, 0.2f64), (100, 12000, 0.2)] {
        let config = VictimTrainConfig {
            demo_episodes: eps,
            bc_steps: steps,
            demo_noise: noise,
            sac_steps: 0,
            ..Default::default()
        };
        let policy = train_victim(&scenario, &features, &config);
        let mut agent = E2eAgent::new(policy, features.clone(), 0, true);
        let recs = run_episodes(&mut agent, &scenario, 15, 700);
        let col = recs.iter().filter(|r| r.collision.is_some()).count();
        let kinds: Vec<_> = recs
            .iter()
            .filter_map(|r| r.collision.map(|c| c.kind))
            .collect();
        let passed: f64 = recs.iter().map(|r| r.passed as f64).sum::<f64>() / 15.0;
        let ret: f64 = recs.iter().map(|r| r.nominal_return).sum::<f64>() / 15.0;
        println!("demos={eps} steps={steps} noise={noise}: ret={ret:.1} passed={passed:.2} collisions={col}/15 {kinds:?}");
    }
}
