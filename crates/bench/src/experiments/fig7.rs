//! Fig. 7 — robustness of the enhanced agents: deviation vs attack effort
//! scatter for the four defended policies.
//!
//! The paper reports average trajectory tracking errors of 0.038
//! (`rho = 1/11`), 0.027 (`rho = 1/2`), 0.02 (`sigma = 0.4`), 0.017
//! (`sigma = 0.2`), with the PNN agents admitting no successful attack
//! below effort 0.4 / 0.6 respectively.

use crate::engine::{Experiment, ExperimentOutput, RunContext};
use crate::experiments::fig5::{scatter_svgs, sweep_agent, Fig5Series};
use crate::harness::AgentKind;
use attack_core::budget::AttackBudget;
use drive_metrics::agg::mean;
use drive_metrics::export::Csv;
use drive_metrics::report::{fmt_f, Table};
use std::sync::Arc;

/// Full Fig. 7 result: one sweep per enhanced agent.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Sweeps for the four enhanced agents (a–d in the paper).
    pub series: Vec<Fig5Series>,
}

impl Fig7Result {
    /// The enhanced agents in paper order.
    pub fn lineup() -> [AgentKind; 4] {
        [
            AgentKind::AdvRhoSmall,
            AgentKind::AdvRhoHalf,
            AgentKind::PnnSigma04,
            AgentKind::PnnSigma02,
        ]
    }

    /// The sweep for an agent, if present.
    pub fn series(&self, agent: AgentKind) -> Option<&Fig5Series> {
        self.series.iter().find(|s| s.agent == agent)
    }

    /// Average tracking error across all efforts for one agent.
    pub fn avg_tracking_error(&self, agent: AgentKind) -> Option<f64> {
        self.series(agent).map(|s| {
            mean(
                &s.points
                    .iter()
                    .map(|p| p.deviation_rmse)
                    .collect::<Vec<_>>(),
            )
        })
    }

    /// Smallest effort of any *successful* attack against one agent.
    pub fn first_success_effort(&self, agent: AgentKind) -> Option<f64> {
        self.series(agent).and_then(|s| {
            s.points
                .iter()
                .filter(|p| p.success)
                .map(|p| p.effort)
                .min_by(f64::total_cmp)
        })
    }
}

impl Fig7Result {
    /// Exports the scatter as CSV (one row per episode).
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new(["agent", "effort", "deviation_rmse", "success"]);
        for s in &self.series {
            for p in &s.points {
                csv.row([
                    s.agent.label().to_string(),
                    format!("{:.4}", p.effort),
                    format!("{:.5}", p.deviation_rmse),
                    p.success.to_string(),
                ]);
            }
        }
        csv
    }
}

/// Runs (or reuses) the Fig. 7 experiment via the context memo; each
/// agent's sweep derives from `root/fig7/<agent>`.
pub fn run(ctx: &RunContext) -> Arc<Fig7Result> {
    ctx.memo("fig7", || {
        let ns = ctx.seeds_for("fig7");
        Fig7Result {
            series: Fig7Result::lineup()
                .into_iter()
                .map(|a| sweep_agent(a, ctx, &ns.child(a.label())))
                .collect(),
        }
    })
}

/// Registry entry for Fig. 7.
pub struct Fig7Experiment;

impl Experiment for Fig7Experiment {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn description(&self) -> &'static str {
        "Robustness of the four enhanced agents: deviation vs effort scatter (camera attack)"
    }

    fn cells(&self) -> usize {
        Fig7Result::lineup().len() * AttackBudget::fig5_grid().len()
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let r = run(ctx);
        ExperimentOutput {
            report: r.to_string(),
            csvs: vec![("fig7".to_string(), r.to_csv())],
            svgs: scatter_svgs("fig7", "Fig. 7", &r.series),
        }
    }
}

impl std::fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 7 — robustness of enhanced agents (camera attack)")?;
        let mut t = Table::new([
            "agent",
            "avg tracking err",
            "dominance effort",
            "first success effort",
            "successes",
        ]);
        for agent in Fig7Result::lineup() {
            let s = self.series(agent).expect("all series present");
            t.row([
                agent.label().to_string(),
                fmt_f(self.avg_tracking_error(agent).unwrap_or(0.0), 3),
                s.dominance
                    .map(|d| fmt_f(d, 2))
                    .unwrap_or_else(|| "-".into()),
                self.first_success_effort(agent)
                    .map(|e| fmt_f(e, 2))
                    .unwrap_or_else(|| "-".into()),
                s.points.iter().filter(|p| p.success).count().to_string(),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "paper: avg err 0.038 / 0.027 / 0.020 / 0.017; no success below effort 0.4 (sigma=0.4) and 0.6 (sigma=0.2)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;
    use attack_core::pipeline::{prepare, PipelineConfig};

    #[test]
    fn smoke_fig7_sweeps_enhanced_agents() {
        let dir = std::env::temp_dir().join("repro-bench-fig7-test");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        let ctx = RunContext::new(&artifacts, &config, Scale::smoke());
        let result = run(&ctx);
        assert_eq!(result.series.len(), 4);
        for agent in Fig7Result::lineup() {
            assert!(result.avg_tracking_error(agent).is_some(), "{agent:?}");
        }
        let text = format!("{result}");
        assert!(text.contains("avg tracking err"));
        assert!(!result.to_csv().is_empty());
    }
}
