//! The attacker's Markov decision process (Section IV).
//!
//! One [`AttackEnv`] wraps a *fixed* victim driving agent inside the
//! simulator: the attacker observes through its own sensor, outputs a raw
//! 1-D action, the budget scales it to the injected perturbation
//! `delta in [-epsilon, epsilon]`, and the reward is the adversarial reward
//! of [`crate::adv_reward`]. The optional teacher adds the
//! learning-from-teacher term for IMU training (Section IV-E).

use crate::adv_reward::AdvReward;
use crate::budget::AttackBudget;
use crate::sensor::AttackerSensor;
use drive_agents::Agent;
use drive_nn::gaussian::GaussianPolicy;
use drive_rl::env::{Env, EnvStep};
use drive_sim::record::EpisodeRecord;
use drive_sim::scenario::Scenario;
use drive_sim::sensors::FeatureConfig;
use drive_sim::vehicle::Actuation;
use drive_sim::world::{Termination, World};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A frozen camera attack policy used as the IMU attacker's teacher.
#[derive(Debug, Clone)]
pub struct Teacher {
    policy: GaussianPolicy,
    sensor: AttackerSensor,
    last_obs: Vec<f32>,
    rng: StdRng,
}

impl Teacher {
    /// Wraps a trained camera policy and its feature configuration.
    pub fn new(policy: GaussianPolicy, features: FeatureConfig) -> Self {
        Teacher {
            sensor: AttackerSensor::camera(features),
            last_obs: Vec::new(),
            policy,
            rng: StdRng::seed_from_u64(0),
        }
    }

    fn reset(&mut self, world: &World) {
        self.sensor.reset();
        self.last_obs = self.sensor.observe(world);
    }

    /// Teacher's raw action for the state the student is about to act in.
    fn raw_action(&mut self) -> f64 {
        self.policy.act(&self.last_obs, &mut self.rng, true)[0] as f64
    }

    fn after_step(&mut self, world: &World) {
        self.last_obs = self.sensor.observe(world);
    }
}

/// The attack-construction environment.
pub struct AttackEnv {
    scenario: Scenario,
    victim: Box<dyn Agent>,
    sensor: AttackerSensor,
    budget: AttackBudget,
    adv: AdvReward,
    teacher: Option<Teacher>,
    world: World,
    record: EpisodeRecord,
    adv_return: f64,
}

impl std::fmt::Debug for AttackEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackEnv")
            .field("budget", &self.budget)
            .field("sensor", &self.sensor.kind())
            .field("step", &self.world.step_index())
            .finish()
    }
}

impl AttackEnv {
    /// Creates the environment around a victim agent.
    pub fn new(
        scenario: Scenario,
        victim: Box<dyn Agent>,
        sensor: AttackerSensor,
        budget: AttackBudget,
        adv: AdvReward,
    ) -> Self {
        let world = World::new(scenario.clone());
        AttackEnv {
            scenario,
            victim,
            sensor,
            budget,
            adv,
            teacher: None,
            world,
            record: EpisodeRecord::default(),
            adv_return: 0.0,
        }
    }

    /// Installs a camera teacher (IMU learning-from-teacher training).
    pub fn set_teacher(&mut self, teacher: Option<Teacher>) {
        self.teacher = teacher;
    }

    /// Changes the attack budget (applies from the next step).
    pub fn set_budget(&mut self, budget: AttackBudget) {
        self.budget = budget;
    }

    /// The record of the episode in progress (or just finished), with the
    /// cumulative adversarial reward filled in.
    pub fn record(&self) -> EpisodeRecord {
        let mut r = self.record.clone();
        r.adv_return = self.adv_return;
        r
    }

    /// The current world (diagnostics).
    pub fn world(&self) -> &World {
        &self.world
    }
}

impl Env for AttackEnv {
    fn obs_dim(&self) -> usize {
        self.sensor.obs_dim()
    }

    fn action_dim(&self) -> usize {
        1
    }

    fn reset(&mut self, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let episode = self.scenario.jittered(&mut rng);
        self.world = World::new(episode);
        self.victim.reset(&self.world);
        self.sensor.reset();
        if let Some(t) = self.teacher.as_mut() {
            t.reset(&self.world);
        }
        self.record = EpisodeRecord {
            dt: self.world.scenario().dt,
            ..EpisodeRecord::default()
        };
        self.adv_return = 0.0;
        self.sensor.observe(&self.world)
    }

    fn step(&mut self, action: &[f32]) -> EnvStep {
        assert_eq!(action.len(), 1, "attack action is the raw steering delta");
        assert!(
            !self.world.is_done(),
            "step called after episode end; reset first"
        );
        let delta = self.budget.scale(action[0] as f64);
        let teacher_delta = self.teacher.as_mut().map(|t| {
            let raw = t.raw_action();
            self.budget.scale(raw)
        });

        let nominal = self.victim.act(&self.world);
        let outcome = self
            .world
            .step(Actuation::new(nominal.steer + delta, nominal.thrust));

        let reward = match teacher_delta {
            Some(td) => self.adv.step_with_teacher(&self.world, &outcome, delta, td),
            None => self.adv.step(&self.world, &outcome, delta),
        };
        self.adv_return += reward;

        self.record.steps += 1;
        self.record.perturbation.push(delta.abs());
        if delta.abs() > drive_sim::record::ATTACK_START_THRESHOLD
            && self.record.attack_start.is_none()
        {
            self.record.attack_start = Some(outcome.step);
        }
        self.record.passed = outcome.passed;
        self.record.collision = outcome.collision;
        self.record.termination = outcome.termination;

        if let Some(t) = self.teacher.as_mut() {
            t.after_step(&self.world);
        }
        let done = matches!(
            outcome.termination,
            Some(Termination::Collision(_)) | Some(Termination::RoadEnd)
        );
        let truncated = matches!(outcome.termination, Some(Termination::TimeLimit));
        EnvStep {
            obs: self.sensor.observe(&self.world),
            reward: reward as f32,
            done,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_agents::modular::{ModularAgent, ModularConfig};
    use drive_sim::sensors::ImuConfig;

    fn env(budget: f64) -> AttackEnv {
        AttackEnv::new(
            Scenario::default(),
            Box::new(ModularAgent::new(ModularConfig::default(), 1)),
            AttackerSensor::camera(FeatureConfig::default()),
            AttackBudget::new(budget),
            AdvReward::default(),
        )
    }

    #[test]
    fn dims_and_reset() {
        let mut e = env(1.0);
        assert_eq!(e.action_dim(), 1);
        assert_eq!(e.obs_dim(), FeatureConfig::default().observation_dim());
        let obs = e.reset(0);
        assert_eq!(obs.len(), e.obs_dim());
    }

    #[test]
    fn zero_budget_attack_is_nominal_driving() {
        let mut e = env(0.0);
        let _ = e.reset(1);
        let mut total = 0.0;
        loop {
            let s = e.step(&[1.0]);
            total += s.reward;
            if s.finished() {
                break;
            }
        }
        let rec = e.record();
        assert!(rec.collision.is_none(), "modular agent drives clean");
        // Nominal case: cumulative adversarial reward is ... not positive.
        // (Slightly positive per-step r_e2n can accrue during overtakes, but
        // without a side collision the attacker earns no collision bonus.)
        assert!(total < 15.0, "adv return {total}");
        assert_eq!(rec.attack_effort(), 0.0);
    }

    #[test]
    fn constant_full_push_disturbs_the_victim() {
        let mut e = env(1.0);
        let _ = e.reset(2);
        let mut steps = 0;
        loop {
            let s = e.step(&[1.0]);
            steps += 1;
            if s.finished() {
                break;
            }
        }
        let rec = e.record();
        assert!((rec.attack_effort() - 1.0).abs() < 1e-9);
        assert_eq!(rec.attack_start, Some(0));
        assert!(steps <= 180);
    }

    #[test]
    fn imu_sensor_variant_works() {
        let mut e = AttackEnv::new(
            Scenario::default(),
            Box::new(ModularAgent::new(ModularConfig::default(), 1)),
            AttackerSensor::imu(ImuConfig::default(), 5),
            AttackBudget::new(0.5),
            AdvReward::default(),
        );
        let obs = e.reset(0);
        assert_eq!(obs.len(), 128);
        let s = e.step(&[0.3]);
        assert_eq!(s.obs.len(), 128);
    }

    #[test]
    fn teacher_reward_shapes_towards_teacher() {
        use drive_nn::gaussian::GaussianPolicy;
        let mut rng = StdRng::seed_from_u64(0);
        let dim = FeatureConfig::default().observation_dim();
        let teacher_policy = GaussianPolicy::new(dim, &[8], 1, &mut rng);
        let mut e = env(1.0);
        e.set_teacher(Some(Teacher::new(teacher_policy, FeatureConfig::default())));
        let _ = e.reset(0);
        let s = e.step(&[0.9]);
        assert!(s.reward.is_finite());
    }
}
