//! The environment interface shared by the driving task and the attacker
//! task.

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvStep {
    /// Observation after the step.
    pub obs: Vec<f32>,
    /// Scalar reward.
    pub reward: f32,
    /// Whether the episode ended for an environment-intrinsic reason
    /// (collision, goal). Terminal states do **not** bootstrap.
    pub done: bool,
    /// Whether the episode was cut off by a time limit. Truncated states
    /// *do* bootstrap in the SAC target.
    pub truncated: bool,
}

impl EnvStep {
    /// Whether the episode is over for either reason.
    pub fn finished(&self) -> bool {
        self.done || self.truncated
    }
}

/// A reinforcement-learning environment with continuous observations and
/// actions in `[-1, 1]^action_dim`.
///
/// Implemented by the end-to-end driving task
/// (`drive_agents::driving_env::DrivingEnv`) and the attacker's environment
/// (`attack_core::attack_env::AttackEnv`).
pub trait Env {
    /// Observation dimensionality.
    fn obs_dim(&self) -> usize;
    /// Action dimensionality.
    fn action_dim(&self) -> usize;
    /// Starts a new episode, returning the initial observation. `seed`
    /// controls all episode randomness (spawn jitter, sensor noise).
    fn reset(&mut self, seed: u64) -> Vec<f32>;
    /// Applies one action.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called after the episode finished
    /// without an intervening [`Env::reset`], or if `action` has the wrong
    /// length.
    fn step(&mut self, action: &[f32]) -> EnvStep;
}

/// Rolls out one episode with the given policy, returning the total reward
/// and episode length.
pub fn rollout<E: Env + ?Sized, F: FnMut(&[f32]) -> Vec<f32>>(
    env: &mut E,
    mut policy: F,
    seed: u64,
) -> (f32, usize) {
    let mut obs = env.reset(seed);
    let mut total = 0.0;
    let mut len = 0;
    loop {
        let action = policy(&obs);
        let step = env.step(&action);
        total += step.reward;
        len += 1;
        let finished = step.finished();
        obs = step.obs;
        if finished {
            return (total, len);
        }
    }
}

#[cfg(test)]
pub(crate) mod test_env {
    use super::*;

    /// A 1-D "move to the origin" toy environment for substrate tests:
    /// state x in [-2, 2], action a in [-1, 1], x' = x + 0.2 a,
    /// reward = -x'^2. Episodes last 30 steps; |x| > 1.9 terminates with a
    /// penalty.
    #[derive(Debug, Clone)]
    pub struct PointEnv {
        x: f32,
        t: usize,
        pub max_steps: usize,
    }

    impl PointEnv {
        pub fn new() -> Self {
            PointEnv {
                x: 0.0,
                t: 0,
                max_steps: 30,
            }
        }
    }

    impl Env for PointEnv {
        fn obs_dim(&self) -> usize {
            1
        }
        fn action_dim(&self) -> usize {
            1
        }
        fn reset(&mut self, seed: u64) -> Vec<f32> {
            // Deterministic spread of start positions from the seed.
            self.x = ((seed % 17) as f32 / 8.0) - 1.0;
            self.t = 0;
            vec![self.x]
        }
        fn step(&mut self, action: &[f32]) -> EnvStep {
            assert_eq!(action.len(), 1);
            self.x += 0.2 * action[0].clamp(-1.0, 1.0);
            self.t += 1;
            let done = self.x.abs() > 1.9;
            let reward = if done { -10.0 } else { -self.x * self.x };
            EnvStep {
                obs: vec![self.x],
                reward,
                done,
                truncated: !done && self.t >= self.max_steps,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_env::PointEnv;
    use super::*;

    #[test]
    fn rollout_runs_to_truncation() {
        let mut env = PointEnv::new();
        let (ret, len) = rollout(&mut env, |_| vec![0.0], 3);
        assert_eq!(len, 30);
        assert!(ret <= 0.0);
    }

    #[test]
    fn rollout_terminates_on_done() {
        let mut env = PointEnv::new();
        // Always push right: x grows 0.2/step, exits at |x| > 1.9.
        let (ret, len) = rollout(&mut env, |_| vec![1.0], 0);
        assert!(len < 30);
        assert!(ret < -9.0, "must include the exit penalty, got {ret}");
    }

    #[test]
    fn good_policy_beats_bad_policy() {
        let mut env = PointEnv::new();
        // Proportional controller towards the origin vs a runaway policy.
        let (good, _) = rollout(&mut env, |o| vec![(-2.0 * o[0]).clamp(-1.0, 1.0)], 5);
        let (bad, _) = rollout(&mut env, |_| vec![1.0], 5);
        assert!(good > bad);
    }

    #[test]
    fn env_step_finished() {
        let s = EnvStep {
            obs: vec![],
            reward: 0.0,
            done: false,
            truncated: true,
        };
        assert!(s.finished());
    }
}
