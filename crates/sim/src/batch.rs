//! Lockstep batched episode stepping for fleet evaluation.
//!
//! A [`WorldBatch`] advances N independent episodes one control step at a
//! time so a fleet driver can gather all live observations into one matrix
//! and amortize policy inference across the whole batch (see
//! `drive_nn::batch::BatchPolicy`). Episodes retire independently: after
//! each step the caller drains finished slots with [`WorldBatch::compact`],
//! which swap-removes them so the dense slot array never carries dead
//! weight.
//!
//! Two precision paths share every decision branch with the serial engine:
//!
//! * [`Precision::Golden`] steps each slot through [`World::step`]
//!   verbatim — bit-identical to a serial run by construction. The batched
//!   win is inference amortization only.
//! * [`Precision::Fast`] runs the control phase (NPC policies, Eq. (1)
//!   smoothing, sanitize accounting) and the outcome phase (collision
//!   detection, termination) through the same `f64` code as the serial
//!   engine, but integrates the bicycle-model substeps in `f32` over a
//!   structure-of-arrays scratch, loop-interchanged so the inner loop runs
//!   across vehicles. State is written back as `f64` (an exact `f32 → f64`
//!   widening, so the next control step sees exactly the integrator's
//!   state). Divergence from Golden therefore comes from integration
//!   round-off alone and is bounded by test
//!   (`fast_path_tracks_golden_within_tolerance`).
//!
//! The Fast integrator requires uniform [`VehicleParams`] across the batch
//! (every spawn site uses `VehicleParams::default()`); it asserts this and
//! hoists the parameter set into scalar constants. NPC inertial histories
//! are not reproduced by the Fast path (only the ego's feed the IMU
//! sensor); they are cleared so stale samples can never leak.

use crate::scenario::Scenario;
use crate::vehicle::{Actuation, InertialSample, VehicleParams};
use crate::world::{StepOutcome, World};
use std::time::Instant;

/// Padding added to the conservative contact radius of the Fast outcome
/// broad phase, far above any `f32` round-off at road coordinates.
const BROAD_PAD: f64 = 0.5;

/// Numeric policy for batched stepping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Bit-identical to the serial engine: per-slot `f64` stepping through
    /// [`World::step`]. The default, and the only path allowed to feed
    /// golden artifacts.
    #[default]
    Golden,
    /// `f32` structure-of-arrays substep integration; `f64` decision
    /// logic. Inference-only evaluation sweeps may opt in for speed.
    Fast,
}

impl Precision {
    /// Parses a CLI spelling (`golden` | `f32`).
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "golden" | "f64" => Some(Precision::Golden),
            "fast" | "f32" => Some(Precision::Fast),
            _ => None,
        }
    }

    /// Canonical CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            Precision::Golden => "golden",
            Precision::Fast => "f32",
        }
    }
}

/// `f32` structure-of-arrays scratch for the Fast integrator.
///
/// Vehicles of all live slots are flattened egos-first: lanes
/// `[0, live)` hold the egos (in slot order), then each slot's NPCs
/// follow slot-major. Per-control-step constants (`thrust`, `tan δ`,
/// `β`, `cos β`) are hoisted out of the substep loop because Eq. (1)
/// fixes the steering angle for the whole control step.
#[derive(Debug, Default)]
struct FastLanes {
    x: Vec<f32>,
    y: Vec<f32>,
    heading: Vec<f32>,
    speed: Vec<f32>,
    thrust: Vec<f32>,
    tan_d: Vec<f32>,
    beta: Vec<f32>,
    cos_b: Vec<f32>,
    /// Ego inertial samples, `[ego * substeps + s]`, three lanes.
    acc_lon: Vec<f32>,
    acc_lat: Vec<f32>,
    yaw: Vec<f32>,
}

impl FastLanes {
    fn clear(&mut self) {
        self.x.clear();
        self.y.clear();
        self.heading.clear();
        self.speed.clear();
        self.thrust.clear();
        self.tan_d.clear();
        self.beta.clear();
        self.cos_b.clear();
    }

    fn push_vehicle(&mut self, v: &crate::vehicle::Vehicle, delta: f64) {
        self.x.push(v.pose.position.x as f32);
        self.y.push(v.pose.position.y as f32);
        self.heading.push(v.pose.heading as f32);
        self.speed.push(v.speed as f32);
        self.thrust.push(v.actuation.thrust as f32);
        let tan_d = tan_fast(delta as f32);
        self.tan_d.push(tan_d);
        let p = &v.params;
        let u = (p.lr / p.wheelbase()) as f32 * tan_d;
        self.beta.push(atan_fast(u));
        // cos(atan u) = 1/sqrt(1 + u^2): one hardware sqrt instead of a
        // libm cosine.
        self.cos_b.push(1.0 / (1.0 + u * u).sqrt());
    }
}

/// Replica of [`crate::geometry::normalize_angle`] in `f32`.
fn normalize_angle_f32(a: f32) -> f32 {
    let two_pi = std::f32::consts::TAU;
    // `fmod` is exact, so for |a| < 2π it returns `a` unchanged; skipping
    // the libm call on that (overwhelmingly common) range is bit-identical
    // and keeps it out of the per-substep integration loop.
    let mut r = if a > -two_pi && a < two_pi {
        a
    } else {
        a % two_pi
    };
    if r >= std::f32::consts::PI {
        r -= two_pi;
    } else if r < -std::f32::consts::PI {
        r += two_pi;
    }
    r
}

/// Fast `f32` sine+cosine: quadrant reduction with a Cody-Waite split of
/// π/2, then the classic Cephes minimax polynomials on `[-π/4, π/4]`
/// (~1 ulp). The f32 path calls this once per vehicle per substep for the
/// course rotation, where libm's `sinf`/`cosf` dominated the integrate
/// phase; the Golden path never uses it, so the batch-vs-serial
/// bit-identity contract is untouched. Accurate for the post-normalize
/// angles this path produces (|x| ≲ π + max β); inputs far outside that
/// range lose reduction precision.
#[inline]
fn sin_cos_poly(r: f32) -> (f32, f32) {
    let z = r * r;
    let s = ((-1.951_529_6e-4 * z + 8.332_161e-3) * z - 1.666_665_5e-1) * z * r + r;
    let c =
        (2.443_315_7e-5 * z - 1.388_731_6e-3) * z * z * z + 4.166_664_6e-2 * z * z - 0.5 * z + 1.0;
    (s, c)
}

#[inline]
fn sin_cos_fast(x: f32) -> (f32, f32) {
    // Lane driving keeps |course| well under π/4 almost always, so the
    // common case needs no reduction and no quadrant dispatch — one
    // predictable branch.
    if x.abs() <= std::f32::consts::FRAC_PI_4 {
        return sin_cos_poly(x);
    }
    const PIO2_HI: f32 = 1.570_796_4;
    const PIO2_LO: f32 = -4.371_139e-8;
    let q = (x * std::f32::consts::FRAC_2_PI).round();
    let r = (x - q * PIO2_HI) - q * PIO2_LO;
    let (s, c) = sin_cos_poly(r);
    match (q as i32) & 3 {
        0 => (s, c),
        1 => (c, -s),
        2 => (-s, -c),
        _ => (-c, s),
    }
}

/// Fast `f32` tangent via [`sin_cos_fast`]; inherits its accuracy and
/// range caveats (fine for steering angles, which are mechanically
/// clamped well inside ±π/2).
#[inline]
fn tan_fast(x: f32) -> f32 {
    let (s, c) = sin_cos_fast(x);
    s / c
}

/// Fast `f32` arctangent: the Cephes range splits at tan(π/8) and
/// tan(3π/8), then a degree-9 odd minimax polynomial (~1 ulp over the
/// full real line). Used to stage the slip angle β on the f32 path.
#[inline]
fn atan_fast(x: f32) -> f32 {
    let ax = x.abs();
    let (base, t) = if ax > 2.414_213_5 {
        (std::f32::consts::FRAC_PI_2, -1.0 / ax)
    } else if ax > 0.414_213_56 {
        (std::f32::consts::FRAC_PI_4, (ax - 1.0) / (ax + 1.0))
    } else {
        (0.0, ax)
    };
    let z = t * t;
    let p =
        (((8.053_744_6e-2 * z - 1.387_768_6e-1) * z + 1.997_771e-1) * z - 3.333_295e-1) * z * t + t;
    let y = base + p;
    if x < 0.0 {
        -y
    } else {
        y
    }
}

/// N episodes stepped in lockstep.
///
/// Slots are dense: index `i` of the `actions` slice passed to
/// [`WorldBatch::step`] addresses `worlds()[i]`. Finished slots stay in
/// place (re-reporting their terminal outcome, like the serial engine)
/// until [`WorldBatch::compact`] swap-removes them; callers holding
/// per-slot side state mirror the same swap-removes through the callback.
#[derive(Debug)]
pub struct WorldBatch {
    worlds: Vec<World>,
    precision: Precision,
    lanes: FastLanes,
    /// Per-step scratch: dense indices of slots that passed `begin_step`.
    live: Vec<usize>,
    /// Per-step scratch: sanitized ego commands, parallel to `live`.
    ego_cmds: Vec<Actuation>,
    /// The batch-wide vehicle parameter set, established and validated at
    /// [`WorldBatch::push`] time on the Fast path (parameters are fixed at
    /// spawn, so a per-push check makes the per-step asserts redundant).
    uniform_params: Option<VehicleParams>,
}

impl WorldBatch {
    /// Creates an empty batch.
    pub fn new(precision: Precision) -> Self {
        WorldBatch {
            worlds: Vec::new(),
            precision,
            lanes: FastLanes::default(),
            live: Vec::new(),
            ego_cmds: Vec::new(),
            uniform_params: None,
        }
    }

    /// Spawns a batch from scenarios (one fresh [`World`] per scenario).
    pub fn from_scenarios<I: IntoIterator<Item = Scenario>>(
        scenarios: I,
        precision: Precision,
    ) -> Self {
        let mut b = WorldBatch::new(precision);
        for s in scenarios {
            b.push(World::new(s));
        }
        b
    }

    /// Adds an episode; returns its dense slot index.
    ///
    /// # Panics
    ///
    /// On the Fast path, panics unless every vehicle in `world` shares the
    /// batch's vehicle parameters (established by the first push).
    pub fn push(&mut self, world: World) -> usize {
        if self.precision == Precision::Fast {
            let p = self
                .uniform_params
                .get_or_insert_with(|| world.ego().params.clone());
            assert_eq!(
                *p,
                world.ego().params,
                "Fast path requires uniform vehicle parameters"
            );
            for npc in world.npcs() {
                assert_eq!(
                    *p, npc.vehicle.params,
                    "Fast path requires uniform vehicle parameters"
                );
            }
        }
        self.worlds.push(world);
        self.worlds.len() - 1
    }

    /// The numeric policy this batch steps under.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Live slots, dense.
    pub fn worlds(&self) -> &[World] {
        &self.worlds
    }

    /// Number of slots currently in the batch.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// Whether the batch has no slots left.
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Advances every slot by one control step. `actions[i]` is the ego
    /// variation command for `worlds()[i]`; outcomes are written densely
    /// into `outcomes` (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if `actions.len() != len()`, and on the Fast path if vehicle
    /// parameters are not uniform across the batch.
    pub fn step(&mut self, actions: &[Actuation], outcomes: &mut Vec<StepOutcome>) {
        assert_eq!(actions.len(), self.worlds.len(), "one action per slot");
        outcomes.clear();
        match self.precision {
            Precision::Golden => self.step_golden(actions, outcomes),
            Precision::Fast => self.step_fast(actions, outcomes),
        }
        // Occupancy counts only slots that actually advanced this step;
        // already-terminated slots merely re-report their outcome.
        crate::perf::record_fleet_batch(self.live.len() as u64);
    }

    /// One Golden control step, sliced into per-phase loops over the
    /// slots (control, integrate, outcome) so each phase is timed once
    /// per batch. Worlds are independent, so phase-major iteration is
    /// bit-identical to the slot-major [`World::step`] sequence.
    fn step_golden(&mut self, actions: &[Actuation], outcomes: &mut Vec<StepOutcome>) {
        let t0 = Instant::now();
        self.live.clear();
        self.ego_cmds.clear();
        for (i, w) in self.worlds.iter_mut().enumerate() {
            match w.begin_step(actions[i]) {
                Ok(cmd) => {
                    self.live.push(i);
                    self.ego_cmds.push(cmd);
                    // Placeholder, finalized by the outcome phase.
                    outcomes.push(StepOutcome {
                        step: 0,
                        collision: None,
                        termination: None,
                        passed: 0,
                    });
                }
                Err(done) => outcomes.push(done),
            }
        }
        let t1 = Instant::now();
        for (&i, cmd) in self.live.iter().zip(&self.ego_cmds) {
            self.worlds[i].integrate_step(*cmd);
        }
        let t2 = Instant::now();
        for &i in &self.live {
            outcomes[i] = self.worlds[i].conclude_step();
        }
        crate::perf::record_fleet_phases(
            (t1 - t0).as_nanos() as u64,
            (t2 - t1).as_nanos() as u64,
            t2.elapsed().as_nanos() as u64,
        );
    }

    /// One Fast control step: shared `f64` control phase, `f32` SoA
    /// integration, SoA broad phase + shared `f64` outcome phase.
    fn step_fast(&mut self, actions: &[Actuation], outcomes: &mut Vec<StepOutcome>) {
        let t0 = Instant::now();
        // Phase 1 — control (`f64`, shared with serial): sanitize, NPC
        // policies, Eq. (1) smoothing. Terminated slots re-report and skip
        // integration, exactly like `World::step`. NPC controls stay in
        // each world's step scratch — no per-step buffers are allocated.
        self.live.clear();
        self.lanes.clear();
        // `outcomes` is filled with placeholders, then finalized in phase 3.
        let mut dt = 0.0f64;
        let mut substeps = 0usize;
        for (i, w) in self.worlds.iter_mut().enumerate() {
            match w.begin_step(actions[i]) {
                Ok(ego_cmd) => {
                    self.live.push(i);
                    dt = w.scenario().dt;
                    substeps = w.scenario().substeps;
                    let delta = w.ego_mut().apply_variation(ego_cmd);
                    self.lanes.push_vehicle(w.ego(), delta);
                    outcomes.push(StepOutcome {
                        step: 0,
                        collision: None,
                        termination: None,
                        passed: 0,
                    });
                }
                Err(done) => outcomes.push(done),
            }
        }
        if self.live.is_empty() {
            let done = Instant::now();
            crate::perf::record_fleet_phases((done - t0).as_nanos() as u64, 0, 0);
            return;
        }
        // NPC lanes, slot-major after the egos.
        for &i in &self.live {
            let w = &mut self.worlds[i];
            for k in 0..w.npcs().len() {
                let control = w.npc_controls()[k];
                let npc = &mut w.npcs_mut()[k];
                let delta = npc.vehicle.apply_variation(control);
                self.lanes.push_vehicle(&npc.vehicle, delta);
            }
        }
        let t1 = Instant::now();

        // Phase 2 — `f32` SoA substep integration, vehicles innermost.
        let p = self
            .uniform_params
            .clone()
            .expect("push validated parameters for every slot");
        let n_egos = self.live.len();
        let n_vehicles = self.lanes.x.len();
        let h = (dt / substeps as f64) as f32;
        let max_accel = p.max_accel as f32;
        let max_brake = p.max_brake as f32;
        let drag = p.drag as f32;
        let max_speed = p.max_speed as f32;
        let max_lat_accel = p.max_lat_accel as f32;
        let wheelbase = p.wheelbase() as f32;
        self.lanes.acc_lon.resize(n_egos * substeps, 0.0);
        self.lanes.acc_lat.resize(n_egos * substeps, 0.0);
        self.lanes.yaw.resize(n_egos * substeps, 0.0);
        for s in 0..substeps {
            for v in 0..n_vehicles {
                let thrust = self.lanes.thrust[v];
                let drive = if thrust >= 0.0 {
                    thrust * max_accel
                } else {
                    thrust * max_brake
                };
                let speed = self.lanes.speed[v];
                let accel = drive - drag * speed;
                let new_speed = (speed + accel * h).clamp(0.0, max_speed);
                let realized_accel = (new_speed - speed) / h;
                let speed = new_speed;
                self.lanes.speed[v] = speed;

                let beta = self.lanes.beta[v];
                let mut yaw_rate = speed * self.lanes.cos_b[v] * self.lanes.tan_d[v] / wheelbase;
                if speed > 0.1 {
                    let cap = max_lat_accel / speed;
                    yaw_rate = yaw_rate.clamp(-cap, cap);
                }
                let course = self.lanes.heading[v] + beta;
                let ds = speed * h;
                let (sin_c, cos_c) = sin_cos_fast(course);
                self.lanes.x[v] += cos_c * ds;
                self.lanes.y[v] += sin_c * ds;
                self.lanes.heading[v] = normalize_angle_f32(self.lanes.heading[v] + yaw_rate * h);

                if v < n_egos {
                    let k = v * substeps + s;
                    self.lanes.acc_lon[k] = realized_accel;
                    self.lanes.acc_lat[k] = speed * yaw_rate;
                    self.lanes.yaw[k] = yaw_rate;
                }
            }
        }

        let t2 = Instant::now();

        // Phase 3 — SoA contact broad phase, scatter back (`f32 → f64` is
        // exact), and conclude with the shared `f64` outcome phase. A slot
        // whose ego is provably clear of every NPC (bounding circles) and
        // of both barriers (worst-case taper corridor) skips the exact
        // narrow phase, which could only return `None` for it.
        let half_diag = 0.5 * p.length.hypot(p.width) + BROAD_PAD;
        let contact_r2 = (2.0 * half_diag) * (2.0 * half_diag);
        let mut lane = n_egos;
        for (e, &i) in self.live.iter().enumerate() {
            let w = &mut self.worlds[i];
            let ego_x = self.lanes.x[e] as f64;
            let ego_y = self.lanes.y[e] as f64;
            let mut contact = false;
            for v in lane..lane + w.npcs().len() {
                let dx = self.lanes.x[v] as f64 - ego_x;
                let dy = self.lanes.y[v] as f64 - ego_y;
                if dx * dx + dy * dy <= contact_r2 {
                    contact = true;
                }
            }
            {
                let road = &w.scenario().road;
                // Barrier edges never move closer to the centerline than
                // this across any topology taper.
                let left_min = match road.topology {
                    crate::road::RoadTopology::LaneDrop { .. } => {
                        road.left_edge_y() - road.lane_width
                    }
                    _ => road.left_edge_y(),
                };
                if ego_y + half_diag >= left_min || ego_y - half_diag <= road.right_edge_y() {
                    contact = true;
                }
            }
            {
                let ego = w.ego_mut();
                ego.pose.position.x = self.lanes.x[e] as f64;
                ego.pose.position.y = self.lanes.y[e] as f64;
                ego.pose.heading = self.lanes.heading[e] as f64;
                ego.speed = self.lanes.speed[e] as f64;
                ego.inertial.clear();
                for s in 0..substeps {
                    let k = e * substeps + s;
                    ego.inertial.push(InertialSample {
                        accel_lon: self.lanes.acc_lon[k] as f64,
                        accel_lat: self.lanes.acc_lat[k] as f64,
                        yaw_rate: self.lanes.yaw[k] as f64,
                    });
                }
            }
            for npc in w.npcs_mut().iter_mut() {
                let v = &mut npc.vehicle;
                v.pose.position.x = self.lanes.x[lane] as f64;
                v.pose.position.y = self.lanes.y[lane] as f64;
                v.pose.heading = self.lanes.heading[lane] as f64;
                v.speed = self.lanes.speed[lane] as f64;
                // Only the ego's inertial history feeds a sensor; drop
                // NPC samples rather than carry stale ones.
                v.inertial.clear();
                lane += 1;
            }
            outcomes[i] = w.conclude_step_pruned(contact);
        }
        crate::perf::record_fleet_phases(
            (t1 - t0).as_nanos() as u64,
            (t2 - t1).as_nanos() as u64,
            t2.elapsed().as_nanos() as u64,
        );
    }

    /// Swap-removes every finished slot, handing each to `retire` along
    /// with the dense index it occupied at removal time. Callers with
    /// per-slot side state must apply the same `swap_remove(index)` to
    /// their parallel arrays inside the callback to stay aligned.
    pub fn compact<F: FnMut(usize, World)>(&mut self, mut retire: F) {
        let mut i = 0;
        while i < self.worlds.len() {
            if self.worlds[i].is_done() {
                let w = self.worlds.swap_remove(i);
                retire(i, w);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The polynomial trig used by the f32 staging/integrate loops must
    /// stay within a few f32 ulps of libm over the ranges those loops
    /// produce (|course| <= pi + beta, |steer| <= max_steer, any slip
    /// ratio for atan).
    #[test]
    fn fast_trig_matches_libm_within_ulps() {
        let mut x = -4.0f32;
        while x <= 4.0 {
            let (s, c) = sin_cos_fast(x);
            assert!((s - x.sin()).abs() < 4e-7, "sin({x}) = {s} vs {}", x.sin());
            assert!((c - x.cos()).abs() < 4e-7, "cos({x}) = {c} vs {}", x.cos());
            assert!((atan_fast(x) - x.atan()).abs() < 4e-7, "atan({x})");
            x += 1e-3;
        }
        let mut d = -1.3f32;
        while d <= 1.3 {
            let t = tan_fast(d);
            let rel = (t - d.tan()).abs() / d.tan().abs().max(1.0);
            assert!(rel < 1e-6, "tan({d}) = {t} vs {}", d.tan());
            d += 1e-3;
        }
    }

    /// Deterministic per-slot action scripts: every slot gets its own
    /// bounded pseudo-random command sequence, aggressive enough to force
    /// collisions and barrier hits at different steps.
    fn action_script(slot: u64, len: usize) -> Vec<Actuation> {
        let mut rng = StdRng::seed_from_u64(0xA11C_E000 + slot);
        (0..len)
            .map(|_| Actuation::new(rng.gen_range(-0.6..0.6), rng.gen_range(-0.2..0.9)))
            .collect()
    }

    fn scenario_for(slot: u64) -> Scenario {
        let mut s = Scenario::default().jittered(&mut StdRng::seed_from_u64(900 + slot));
        // Stagger the horizons so slots retire mid-flight even when no
        // collision happens.
        s.max_steps = 30 + (slot as usize % 7) * 11;
        s
    }

    /// Serial reference trace: per-step ego state bits + outcome.
    fn serial_trace(slot: u64) -> (Vec<[u64; 4]>, usize) {
        let scenario = scenario_for(slot);
        let script = action_script(slot, scenario.max_steps);
        let mut w = World::new(scenario);
        let mut trace = Vec::new();
        for a in script {
            w.step(a);
            trace.push(ego_bits(&w));
            if w.is_done() {
                break;
            }
        }
        (trace, w.step_index())
    }

    fn ego_bits(w: &World) -> [u64; 4] {
        let e = w.ego();
        [
            e.pose.position.x.to_bits(),
            e.pose.position.y.to_bits(),
            e.pose.heading.to_bits(),
            e.speed.to_bits(),
        ]
    }

    /// The batch path must stay bit-identical to serial on non-straight
    /// topologies too: merge-steering NPCs and x-dependent barrier checks
    /// all run inside the shared `begin_step`/`conclude_step` core.
    #[test]
    fn topology_scenarios_batch_identical_to_serial() {
        use crate::scenario::ScenarioSpec;
        let specs = [ScenarioSpec::on_ramp_merge(), ScenarioSpec::lane_drop()];
        let scenario_at = |slot: u64| -> Scenario {
            let spec = &specs[(slot % 2) as usize];
            let mut s = spec
                .scenario()
                .clone()
                .jittered(&mut StdRng::seed_from_u64(300 + slot));
            s.max_steps = 60 + (slot as usize % 5) * 13;
            s
        };
        let batch = 8usize;
        // Serial references.
        let serial: Vec<Vec<[u64; 4]>> = (0..batch as u64)
            .map(|slot| {
                let scenario = scenario_at(slot);
                let script = action_script(slot, scenario.max_steps);
                let mut w = World::new(scenario);
                let mut trace = Vec::new();
                for a in script {
                    w.step(a);
                    trace.push(ego_bits(&w));
                    if w.is_done() {
                        break;
                    }
                }
                trace
            })
            .collect();
        // Batched run, mirrored through compact().
        let mut wb = WorldBatch::new(Precision::Golden);
        for slot in 0..batch as u64 {
            wb.push(World::new(scenario_at(slot)));
        }
        let scripts: Vec<Vec<Actuation>> = (0..batch as u64)
            .map(|s| action_script(s, scenario_at(s).max_steps))
            .collect();
        let mut ids: Vec<usize> = (0..batch).collect();
        let mut steps_seen: Vec<usize> = vec![0; batch];
        let mut outcomes = Vec::new();
        while !wb.is_empty() {
            let actions: Vec<Actuation> = ids
                .iter()
                .zip(wb.worlds())
                .map(|(&id, w)| scripts[id][w.step_index()])
                .collect();
            wb.step(&actions, &mut outcomes);
            for (dense, w) in wb.worlds().iter().enumerate() {
                let id = ids[dense];
                let t = steps_seen[id];
                assert_eq!(
                    serial[id][t],
                    ego_bits(w),
                    "topology slot {id} step {t}: batch diverged from serial"
                );
                steps_seen[id] += 1;
            }
            wb.compact(|dense, _| {
                ids.swap_remove(dense);
            });
        }
    }

    /// The Golden batch path must reproduce serial episodes BIT-FOR-BIT at
    /// every step, across batch sizes and with slots retiring mid-flight.
    #[test]
    fn golden_batch_bit_identical_to_serial_with_retirements() {
        for &batch in &[1usize, 2, 5, 23, 64, 128] {
            let serial: Vec<(Vec<[u64; 4]>, usize)> = (0..batch as u64).map(serial_trace).collect();

            let mut wb = WorldBatch::new(Precision::Golden);
            for slot in 0..batch as u64 {
                wb.push(World::new(scenario_for(slot)));
            }
            let scripts: Vec<Vec<Actuation>> = (0..batch as u64)
                .map(|s| action_script(s, scenario_for(s).max_steps))
                .collect();
            // Parallel per-slot state mirrored through compact().
            let mut ids: Vec<usize> = (0..batch).collect();
            let mut steps_seen: Vec<usize> = vec![0; batch];
            let mut outcomes = Vec::new();
            let mut retired = 0usize;
            while !wb.is_empty() {
                let actions: Vec<Actuation> = ids
                    .iter()
                    .zip(wb.worlds())
                    .map(|(&id, w)| scripts[id][w.step_index()])
                    .collect();
                wb.step(&actions, &mut outcomes);
                for (dense, w) in wb.worlds().iter().enumerate() {
                    let id = ids[dense];
                    let t = steps_seen[id];
                    assert_eq!(
                        serial[id].0[t],
                        ego_bits(w),
                        "batch {batch} slot {id} step {t}: batch diverged from serial"
                    );
                    steps_seen[id] += 1;
                }
                wb.compact(|dense, w| {
                    let id = ids.swap_remove(dense);
                    assert_eq!(
                        w.step_index(),
                        serial[id].1,
                        "slot {id} retired at the wrong step"
                    );
                    retired += 1;
                });
            }
            assert_eq!(retired, batch);
            // Mid-flight retirement actually exercised: staggered horizons
            // guarantee non-uniform lifetimes for batch >= 2.
            if batch >= 2 {
                let lifetimes: std::collections::HashSet<usize> =
                    serial.iter().map(|(_, n)| *n).collect();
                assert!(lifetimes.len() > 1, "horizons must be staggered");
            }
        }
    }

    /// Fast (`f32`) integration must track the Golden trajectory within a
    /// tight absolute tolerance over a full episode. The bound below is
    /// the documented epsilon: single-precision round-off accumulated over
    /// `<= 180 steps x 5 substeps` of a bounded-curvature trajectory.
    #[test]
    fn fast_path_tracks_golden_within_tolerance() {
        const POS_TOL: f64 = 5e-2; // meters
        const SPEED_TOL: f64 = 1e-2; // m/s
        const HEADING_TOL: f64 = 2e-3; // radians
        let batch = 8usize;
        let mk = |precision| {
            let mut wb = WorldBatch::new(precision);
            for slot in 0..batch as u64 {
                let mut s = Scenario::default().jittered(&mut StdRng::seed_from_u64(7 + slot));
                s.max_steps = 120;
                wb.push(World::new(s));
            }
            wb
        };
        let mut golden = mk(Precision::Golden);
        let mut fast = mk(Precision::Fast);
        let mut out_g = Vec::new();
        let mut out_f = Vec::new();
        let mut max_pos = 0.0f64;
        for t in 0..120 {
            if golden.is_empty() || fast.is_empty() {
                break;
            }
            // Identical mild scripts on both batches (no compaction so the
            // slot mapping stays the identity while both sides are live).
            let actions: Vec<Actuation> = (0..golden.len())
                .map(|i| {
                    Actuation::new(
                        0.25 * (((t + i) % 9) as f64 / 4.0 - 1.0),
                        0.5 - 0.1 * ((t % 5) as f64),
                    )
                })
                .collect();
            golden.step(&actions, &mut out_g);
            fast.step(&actions[..fast.len()], &mut out_f);
            for (g, f) in golden.worlds().iter().zip(fast.worlds()) {
                let ge = g.ego();
                let fe = f.ego();
                let dp = ((ge.pose.position.x - fe.pose.position.x).powi(2)
                    + (ge.pose.position.y - fe.pose.position.y).powi(2))
                .sqrt();
                max_pos = max_pos.max(dp);
                assert!(dp < POS_TOL, "step {t}: ego position diverged by {dp}");
                assert!((ge.speed - fe.speed).abs() < SPEED_TOL);
                assert!((ge.pose.heading - fe.pose.heading).abs() < HEADING_TOL);
            }
            if golden.worlds().iter().any(World::is_done)
                || fast.worlds().iter().any(World::is_done)
            {
                // Once either path terminates a slot the finished side
                // stops moving while the other may not (termination can
                // land one step apart across precisions) — the state
                // comparison is only meaningful while both are live.
                break;
            }
        }
        assert!(max_pos > 0.0, "paths must actually differ (f32 is lossy)");
    }

    /// Fast must reuse the serial decision logic: sanitize accounting and
    /// post-termination re-reporting behave exactly like `World::step`.
    #[test]
    fn fast_path_shares_decision_logic() {
        let mut s = Scenario::default();
        s.npcs.clear();
        s.max_steps = 3;
        let mut wb = WorldBatch::new(Precision::Fast);
        wb.push(World::new(s));
        let mut out = Vec::new();
        wb.step(
            &[Actuation {
                steer: f64::NAN,
                thrust: 0.2,
            }],
            &mut out,
        );
        assert_eq!(wb.worlds()[0].nonfinite_action_count(), 1);
        for _ in 0..2 {
            wb.step(&[Actuation::new(0.0, 0.2)], &mut out);
        }
        assert!(wb.worlds()[0].is_done());
        // Stepping a finished slot re-reports, moves nothing, but still
        // counts sanitize hits — the serial contract.
        let x = wb.worlds()[0].ego().pose.position.x;
        wb.step(
            &[Actuation {
                steer: f64::INFINITY,
                thrust: 0.0,
            }],
            &mut out,
        );
        assert_eq!(
            out[0].termination,
            Some(crate::world::Termination::TimeLimit)
        );
        assert_eq!(wb.worlds()[0].ego().pose.position.x, x);
        assert_eq!(wb.worlds()[0].nonfinite_action_count(), 2);
    }

    /// Ego inertial histories must be populated by the Fast path (the IMU
    /// samples them every step).
    #[test]
    fn fast_path_records_ego_inertial() {
        let mut wb = WorldBatch::new(Precision::Fast);
        wb.push(World::new(Scenario::default()));
        let substeps = wb.worlds()[0].scenario().substeps;
        let mut out = Vec::new();
        wb.step(&[Actuation::new(0.1, 0.5)], &mut out);
        assert_eq!(wb.worlds()[0].ego().inertial.len(), substeps);
        assert!(wb.worlds()[0].ego().inertial[0].accel_lon != 0.0);
    }

    proptest::proptest! {
        /// Property form of the equivalence above: for ANY batch size in
        /// `1..=128` and ANY seed base, a Golden batch is a pure
        /// reordering of the serial runs — same per-step ego state bits,
        /// same retirement steps, mid-flight retirements included.
        #[test]
        fn golden_batch_equals_serial_for_any_batch(
            batch in 1usize..=128,
            seed_base in 0u64..1_000_000,
        ) {
            let mk_scenario = |slot: u64| {
                let mut s = Scenario::default()
                    .jittered(&mut StdRng::seed_from_u64(seed_base ^ slot));
                s.max_steps = 25 + ((seed_base + slot) as usize % 5) * 9;
                s
            };
            let serial: Vec<(Vec<[u64; 4]>, usize)> = (0..batch as u64)
                .map(|slot| {
                    let scenario = mk_scenario(slot);
                    let script = action_script(seed_base ^ slot, scenario.max_steps);
                    let mut w = World::new(scenario);
                    let mut trace = Vec::new();
                    for a in script {
                        w.step(a);
                        trace.push(ego_bits(&w));
                        if w.is_done() {
                            break;
                        }
                    }
                    (trace, w.step_index())
                })
                .collect();

            let mut wb = WorldBatch::new(Precision::Golden);
            let mut scripts = Vec::new();
            for slot in 0..batch as u64 {
                let scenario = mk_scenario(slot);
                scripts.push(action_script(seed_base ^ slot, scenario.max_steps));
                wb.push(World::new(scenario));
            }
            let mut ids: Vec<usize> = (0..batch).collect();
            let mut steps_seen = vec![0usize; batch];
            let mut outcomes = Vec::new();
            let mut retired = 0usize;
            while !wb.is_empty() {
                let actions: Vec<Actuation> = ids
                    .iter()
                    .zip(wb.worlds())
                    .map(|(&id, w)| scripts[id][w.step_index()])
                    .collect();
                wb.step(&actions, &mut outcomes);
                for (dense, w) in wb.worlds().iter().enumerate() {
                    let id = ids[dense];
                    proptest::prop_assert_eq!(serial[id].0[steps_seen[id]], ego_bits(w));
                    steps_seen[id] += 1;
                }
                let mut bad = None;
                wb.compact(|dense, w| {
                    let id = ids.swap_remove(dense);
                    if w.step_index() != serial[id].1 {
                        bad = Some(id);
                    }
                    retired += 1;
                });
                proptest::prop_assert_eq!(bad, None);
            }
            proptest::prop_assert_eq!(retired, batch);
        }

        /// The same property over *generated* scenarios on every road
        /// topology (Straight, OnRamp, LaneDrop): seeded generation plus
        /// per-slot spawn jitter, round-tripped through batch 1..=128.
        /// Merge-deadline NPC steering and x-dependent barrier geometry
        /// must be bit-identical through the batched lead-table path.
        #[test]
        fn generated_topology_batch_equals_serial_for_any_batch(
            batch in 1usize..=128,
            topo in 0usize..3,
            seed_base in 0u64..1_000_000,
        ) {
            use crate::generate::{generate, ScenarioAxes, SpeedMix, TopologyKind, TrafficDensity};
            use drive_seed::SeedTree;
            let axes = ScenarioAxes {
                topology: TopologyKind::ALL[topo],
                density: TrafficDensity::Normal,
                speed_mix: SpeedMix::Mixed,
                fault_intensity: 0.0,
            };
            let root = SeedTree::root(seed_base).child("batch-prop");
            let mk_scenario = |slot: u64| {
                let g = generate(axes, &root.child(slot));
                let mut s = g
                    .spec
                    .scenario()
                    .jittered(&mut StdRng::seed_from_u64(seed_base ^ slot));
                s.max_steps = 25 + ((seed_base + slot) as usize % 5) * 9;
                s
            };
            let serial: Vec<(Vec<[u64; 4]>, usize)> = (0..batch as u64)
                .map(|slot| {
                    let scenario = mk_scenario(slot);
                    let script = action_script(seed_base ^ slot, scenario.max_steps);
                    let mut w = World::new(scenario);
                    let mut trace = Vec::new();
                    for a in script {
                        w.step(a);
                        trace.push(ego_bits(&w));
                        if w.is_done() {
                            break;
                        }
                    }
                    (trace, w.step_index())
                })
                .collect();

            let mut wb = WorldBatch::new(Precision::Golden);
            let mut scripts = Vec::new();
            for slot in 0..batch as u64 {
                let scenario = mk_scenario(slot);
                scripts.push(action_script(seed_base ^ slot, scenario.max_steps));
                wb.push(World::new(scenario));
            }
            let mut ids: Vec<usize> = (0..batch).collect();
            let mut steps_seen = vec![0usize; batch];
            let mut outcomes = Vec::new();
            let mut retired = 0usize;
            while !wb.is_empty() {
                let actions: Vec<Actuation> = ids
                    .iter()
                    .zip(wb.worlds())
                    .map(|(&id, w)| scripts[id][w.step_index()])
                    .collect();
                wb.step(&actions, &mut outcomes);
                for (dense, w) in wb.worlds().iter().enumerate() {
                    let id = ids[dense];
                    proptest::prop_assert_eq!(serial[id].0[steps_seen[id]], ego_bits(w));
                    steps_seen[id] += 1;
                }
                let mut bad = None;
                wb.compact(|dense, w| {
                    let id = ids.swap_remove(dense);
                    if w.step_index() != serial[id].1 {
                        bad = Some(id);
                    }
                    retired += 1;
                });
                proptest::prop_assert_eq!(bad, None);
            }
            proptest::prop_assert_eq!(retired, batch);
        }
    }

    #[test]
    fn precision_parse_round_trips() {
        assert_eq!(Precision::parse("golden"), Some(Precision::Golden));
        assert_eq!(Precision::parse("f64"), Some(Precision::Golden));
        assert_eq!(Precision::parse("f32"), Some(Precision::Fast));
        assert_eq!(Precision::parse("fast"), Some(Precision::Fast));
        assert_eq!(Precision::parse("f16"), None);
        assert_eq!(Precision::Fast.label(), "f32");
        assert_eq!(Precision::default(), Precision::Golden);
    }
}
