//! The action-space attack in one minute, no training needed: the
//! geometric oracle attacker lurks until the safety-critical moment
//! (`I(omega)` fires), then hijacks the steering of the modular pipeline
//! into the nearest NPC — the paper's side collision.
//!
//! ```sh
//! cargo run --release --example oracle_attack
//! ```

use ad_action_attacks::prelude::*;

fn main() {
    let scenario = Scenario::default();
    let adv = AdvReward::default();

    println!("budget  outcome        t_attack->collision  adv_return  nominal");
    println!("{}", "-".repeat(68));
    for eps in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut agent = ModularAgent::new(ModularConfig::default(), 1);
        let mut oracle = OracleAttacker::new(AttackBudget::new(eps));
        let record = run_attacked_episode(&mut agent, Some(&mut oracle), &adv, &scenario, 7);
        let outcome = match record.collision {
            Some(c) => format!("{:?}", c.kind),
            None => "no collision".into(),
        };
        let ttc = record
            .time_to_collision()
            .map(|t| format!("{t:.2}s"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{eps:<7.2} {outcome:<14} {ttc:<20} {:<11.1} {:.1}",
            record.adv_return, record.nominal_return
        );
    }
    println!();
    println!("Higher budgets let the attacker overpower the PID feedback: the");
    println!("side collision appears once the injected steering exceeds what");
    println!("the modular pipeline can counteract within its actuation limits.");
}
