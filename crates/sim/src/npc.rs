//! Non-player-character (NPC) traffic vehicles.
//!
//! The paper's scenario has six NPC vehicles traveling at a slow reference
//! speed (6 m/s) that the ego vehicle must overtake. Each NPC is a full
//! [`crate::vehicle::Vehicle`] driven by a simple lane-keeping
//! controller with car-following: it holds its lane center, regulates to its
//! reference speed, and slows down behind any slower vehicle ahead in the
//! same lane.

use crate::road::Road;
use crate::vehicle::{Actuation, Vehicle};
use serde::{Deserialize, Serialize};

/// Gains and limits of the NPC lane-keeping controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NpcControllerParams {
    /// Proportional gain on lateral offset, 1/m.
    pub k_lateral: f64,
    /// Proportional gain on heading error.
    pub k_heading: f64,
    /// Proportional gain on speed error, s/m.
    pub k_speed: f64,
    /// Desired time headway to the vehicle ahead, seconds.
    pub time_headway: f64,
    /// Minimum standstill gap, meters.
    pub min_gap: f64,
    /// Distance before an ending lane's merge deadline at which the NPC
    /// starts steering for the merge target lane, meters.
    #[serde(default = "default_merge_lookahead")]
    pub merge_lookahead: f64,
}

fn default_merge_lookahead() -> f64 {
    60.0
}

impl Default for NpcControllerParams {
    fn default() -> Self {
        NpcControllerParams {
            k_lateral: 0.15,
            k_heading: 1.2,
            k_speed: 0.5,
            time_headway: 1.5,
            min_gap: 6.0,
            merge_lookahead: default_merge_lookahead(),
        }
    }
}

/// An NPC vehicle: dynamics plus its lane assignment and reference speed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Npc {
    /// Underlying vehicle dynamics.
    pub vehicle: Vehicle,
    /// Lane this NPC keeps.
    pub lane: usize,
    /// Cruise speed when unobstructed, m/s.
    pub ref_speed: f64,
    /// Controller parameters.
    pub controller: NpcControllerParams,
}

/// Minimal view of another vehicle used for car-following decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeadInfo {
    /// Longitudinal position (x) of the lead vehicle's center.
    pub x: f64,
    /// Lane the lead vehicle currently occupies.
    pub lane: usize,
    /// Speed of the lead vehicle, m/s.
    pub speed: f64,
}

impl Npc {
    /// Creates an NPC keeping `lane` at `ref_speed`.
    pub fn new(vehicle: Vehicle, lane: usize, ref_speed: f64) -> Self {
        Npc {
            vehicle,
            lane,
            ref_speed,
            controller: NpcControllerParams::default(),
        }
    }

    /// The lane this NPC is currently steering for: its assigned lane until
    /// an upcoming merge deadline ([`Road::lane_end_x`]) forces it into the
    /// merge target. On a straight road this is always the assigned lane.
    pub fn active_lane(&self, road: &Road) -> usize {
        match road.lane_end_x(self.lane) {
            Some(end) if self.vehicle.pose.position.x + self.controller.merge_lookahead >= end => {
                road.merge_target(self.lane)
            }
            _ => self.lane,
        }
    }

    /// Computes this NPC's actuation-variation command.
    ///
    /// `others` lists every other vehicle on the road (ego included); the
    /// nearest one ahead in the active lane bounds the target speed through
    /// a constant-time-headway rule. When the assigned lane is ending, the
    /// NPC steers for the merge target lane and yields to any vehicle
    /// already alongside there.
    pub fn control(&self, road: &Road, others: &[LeadInfo]) -> Actuation {
        let p = &self.controller;
        let pos = self.vehicle.pose.position;
        let lane = self.active_lane(road);
        let offset = pos.y - road.lane_center_y(lane);
        let steer = -(p.k_lateral * offset + p.k_heading * self.vehicle.pose.heading);

        // Car following: find the nearest lead in the active lane.
        let mut target_speed = self.ref_speed;
        let lead = others
            .iter()
            .filter(|o| o.lane == lane && o.x > pos.x)
            .min_by(|a, b| a.x.total_cmp(&b.x));
        if let Some(lead) = lead {
            let gap = lead.x - pos.x;
            let desired_gap = p.min_gap + p.time_headway * self.vehicle.speed;
            if gap < desired_gap {
                // Scale down towards the lead's speed as the gap closes.
                let ratio = ((gap - p.min_gap) / (desired_gap - p.min_gap)).clamp(0.0, 1.0);
                target_speed = lead.speed + ratio * (self.ref_speed - lead.speed).max(0.0);
                target_speed = target_speed.min(self.ref_speed);
            }
        }
        if lane != self.lane {
            // Mid-merge: if someone in the target lane is alongside, drop
            // below their speed so the gap opens behind them.
            let blocker = others
                .iter()
                .filter(|o| o.lane == lane && (o.x - pos.x).abs() < p.min_gap)
                .min_by(|a, b| (a.x - pos.x).abs().total_cmp(&(b.x - pos.x).abs()));
            if let Some(blocker) = blocker {
                target_speed = target_speed.min((blocker.speed - 1.0).max(0.0));
            }
        }
        let thrust = p.k_speed * (target_speed - self.vehicle.speed);
        Actuation::new(steer, thrust)
    }

    /// This NPC summarized as a [`LeadInfo`] for other vehicles' controllers.
    pub fn lead_info(&self, road: &Road) -> LeadInfo {
        LeadInfo {
            x: self.vehicle.pose.position.x,
            lane: road.lane_index_at(self.vehicle.pose.position.x, self.vehicle.pose.position.y),
            speed: self.vehicle.speed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Pose;
    use crate::vehicle::VehicleParams;

    fn npc_at(road: &Road, lane: usize, x: f64, speed: f64) -> Npc {
        let pose = Pose::new(x, road.lane_center_y(lane), 0.0);
        Npc::new(
            Vehicle::new(VehicleParams::default(), pose, speed),
            lane,
            6.0,
        )
    }

    #[test]
    fn holds_lane_center_over_time() {
        let road = Road::default();
        let mut npc = npc_at(&road, 1, 0.0, 6.0);
        // Perturb laterally, then let the controller settle.
        npc.vehicle.pose.position.y += 0.8;
        for _ in 0..300 {
            let a = npc.control(&road, &[]);
            npc.vehicle.step(a, 0.1, 5);
        }
        let offset = npc.vehicle.pose.position.y - road.lane_center_y(1);
        assert!(offset.abs() < 0.15, "offset {offset} should settle near 0");
        assert!(npc.vehicle.pose.heading.abs() < 0.05);
    }

    #[test]
    fn regulates_to_reference_speed() {
        let road = Road::default();
        let mut npc = npc_at(&road, 0, 0.0, 2.0);
        for _ in 0..300 {
            let a = npc.control(&road, &[]);
            npc.vehicle.step(a, 0.1, 5);
        }
        assert!(
            (npc.vehicle.speed - 6.0).abs() < 0.5,
            "speed {}",
            npc.vehicle.speed
        );
    }

    #[test]
    fn slows_behind_lead_in_same_lane() {
        let road = Road::default();
        let mut npc = npc_at(&road, 1, 0.0, 6.0);
        let mut lead = LeadInfo {
            x: 10.0,
            lane: 1,
            speed: 2.0,
        };
        for _ in 0..300 {
            let a = npc.control(&road, &[lead]);
            npc.vehicle.step(a, 0.1, 5);
            lead.x += lead.speed * 0.1;
        }
        // The follower must have matched the slow lead without passing it.
        assert!(npc.vehicle.speed < 3.5, "speed {}", npc.vehicle.speed);
        assert!(
            npc.vehicle.pose.position.x < lead.x,
            "must not pass the lead"
        );
    }

    #[test]
    fn ignores_lead_in_other_lane() {
        let road = Road::default();
        let npc = npc_at(&road, 1, 0.0, 6.0);
        let other_lane = LeadInfo {
            x: 8.0,
            lane: 0,
            speed: 2.0,
        };
        let a = npc.control(&road, &[other_lane]);
        let a_free = npc.control(&road, &[]);
        assert_eq!(a, a_free);
    }

    #[test]
    fn ignores_vehicles_behind() {
        let road = Road::default();
        let npc = npc_at(&road, 1, 50.0, 6.0);
        let behind = LeadInfo {
            x: 40.0,
            lane: 1,
            speed: 20.0,
        };
        let a = npc.control(&road, &[behind]);
        let a_free = npc.control(&road, &[]);
        assert_eq!(a, a_free);
    }

    #[test]
    fn straight_road_never_merges() {
        let road = Road::default();
        let npc = npc_at(&road, 1, 1400.0, 6.0);
        assert_eq!(npc.active_lane(&road), 1);
    }

    #[test]
    fn ramp_npc_merges_into_lane_zero_before_deadline() {
        let road = Road::on_ramp(3, 3.5, 1500.0, 0.0, 250.0, 330.0);
        let mut npc = npc_at(&road, 3, 20.0, 8.0);
        assert_eq!(npc.active_lane(&road), 3, "far from the deadline");
        // Drive until past merge_start; the controller must have pulled the
        // NPC onto the mainline by then.
        while npc.vehicle.pose.position.x < 250.0 {
            let a = npc.control(&road, &[]);
            npc.vehicle.step(a, 0.1, 5);
        }
        assert_eq!(npc.active_lane(&road), 0);
        let offset = npc.vehicle.pose.position.y - road.lane_center_y(0);
        assert!(
            offset.abs() < 0.6,
            "should be in lane 0 at the deadline, offset {offset}"
        );
    }

    #[test]
    fn lane_drop_npc_merges_right() {
        let road = Road::lane_drop(3, 3.5, 1500.0, 300.0, 380.0);
        let mut npc = npc_at(&road, 2, 50.0, 8.0);
        assert_eq!(npc.active_lane(&road), 2);
        while npc.vehicle.pose.position.x < 300.0 {
            let a = npc.control(&road, &[]);
            npc.vehicle.step(a, 0.1, 5);
        }
        assert_eq!(npc.active_lane(&road), 1);
        let offset = npc.vehicle.pose.position.y - road.lane_center_y(1);
        assert!(offset.abs() < 0.6, "offset {offset}");
    }

    #[test]
    fn merging_npc_yields_to_alongside_traffic() {
        let road = Road::on_ramp(3, 3.5, 1500.0, 0.0, 250.0, 330.0);
        // Inside the merge window with a mainline car right alongside.
        let npc = npc_at(&road, 3, 220.0, 6.0);
        let blocker = LeadInfo {
            x: 221.0,
            lane: 0,
            speed: 6.0,
        };
        let a_yield = npc.control(&road, &[blocker]);
        let a_free = npc.control(&road, &[]);
        assert!(
            a_yield.thrust < a_free.thrust,
            "must brake to open a gap: {a_yield:?} vs {a_free:?}"
        );
    }

    #[test]
    fn lead_info_reports_current_lane() {
        let road = Road::default();
        let mut npc = npc_at(&road, 2, 10.0, 6.0);
        let info = npc.lead_info(&road);
        assert_eq!(info.lane, 2);
        assert_eq!(info.x, 10.0);
        // Drift into lane 1 and the reported lane follows.
        npc.vehicle.pose.position.y = road.lane_center_y(1);
        assert_eq!(npc.lead_info(&road).lane, 1);
    }
}
