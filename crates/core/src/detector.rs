//! Perturbation detection — the practical switcher the paper sketches.
//!
//! Section VI-B's PNN switcher makes "an idealized assumption that the
//! switcher is aware of the attack budget"; the paper suggests that "in
//! practice, the switcher can use ... the magnitude of a detected
//! perturbation" as a proxy, and the conclusion calls a detection-capable
//! simplex agent "desirable". This module implements that future-work item.
//!
//! The detector exploits the actuator model the vehicle already knows: the
//! realized steering follows Eq. (1),
//! `a_t = (1 - alpha) * (nu_t + delta_t) + alpha * a_{t-1}`, and a steering
//! angle sensor reads back `a_t`. Inverting,
//!
//! ```text
//! delta_hat_t = (a_t - alpha * a_{t-1}) / (1 - alpha) - nu_t
//! ```
//!
//! A rolling upper quantile of `|delta_hat|` then estimates the active
//! attack budget, which drives a [`DetectorSimplexAgent`] — the same PNN
//! switcher, but fed by detection instead of ground truth.

use crate::budget::AttackBudget;
use drive_agents::Agent;
use drive_nn::pnn::PnnPolicy;
use drive_sim::faults::FaultInjector;
use drive_sim::sensors::{FeatureConfig, FeatureExtractor};
use drive_sim::vehicle::Actuation;
use drive_sim::world::World;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of the residual-based perturbation detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// The Eq. (1) steering retain rate `alpha` (must match the plant).
    pub alpha: f64,
    /// Rolling window length, steps.
    pub window: usize,
    /// Quantile of `|delta_hat|` reported as the budget estimate.
    pub quantile: f64,
    /// Residuals below this are treated as sensor noise.
    pub noise_floor: f64,
    /// Once the hardened column engages, keep it engaged for the rest of
    /// the episode. Without latching, a burst attacker can wait out the
    /// rolling window and strike the fragile base policy again.
    pub latching: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            alpha: drive_sim::vehicle::VehicleParams::default().alpha,
            window: 30,
            quantile: 0.9,
            noise_floor: 0.02,
            latching: true,
        }
    }
}

/// Residual-based estimator of the injected steering perturbation.
#[derive(Debug, Clone)]
pub struct PerturbationDetector {
    config: DetectorConfig,
    residuals: VecDeque<f64>,
}

impl PerturbationDetector {
    /// Creates a detector.
    pub fn new(config: DetectorConfig) -> Self {
        PerturbationDetector {
            residuals: VecDeque::with_capacity(config.window),
            config,
        }
    }

    /// Clears the rolling window (call at episode start).
    pub fn reset(&mut self) {
        self.residuals.clear();
    }

    /// Feeds one step: the command `nu` the agent issued, the realized
    /// steering before (`a_prev`) and after (`a_now`) that step. Returns
    /// the residual estimate `delta_hat` for the step.
    pub fn observe(&mut self, nu: f64, a_prev: f64, a_now: f64) -> f64 {
        let alpha = self.config.alpha;
        let mut delta_hat = (a_now - alpha * a_prev) / (1.0 - alpha) - nu;
        if delta_hat.abs() < self.config.noise_floor {
            delta_hat = 0.0;
        }
        if self.residuals.len() == self.config.window {
            self.residuals.pop_front();
        }
        self.residuals.push_back(delta_hat.abs());
        delta_hat
    }

    /// The estimated active attack budget: the configured quantile of
    /// recent `|delta_hat|` values (0 before any observation).
    pub fn estimated_budget(&self) -> f64 {
        if self.residuals.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f64> = self.residuals.iter().copied().collect();
        sorted.sort_by(f64::total_cmp);
        let pos = (self.config.quantile * (sorted.len() - 1) as f64).round() as usize;
        sorted[pos.min(sorted.len() - 1)]
    }
}

/// The practical PNN simplex agent: switches to the hardened column when
/// the *detected* perturbation exceeds `sigma`.
#[derive(Debug, Clone)]
pub struct DetectorSimplexAgent {
    pnn: PnnPolicy,
    /// Switching threshold on the detected budget.
    pub sigma: f64,
    detector: PerturbationDetector,
    extractor: FeatureExtractor,
    rng: StdRng,
    last_command: Option<f64>,
    last_realized: f64,
    hardened_steps: usize,
    total_steps: usize,
    latched: bool,
    config: DetectorConfig,
    obs_faults: Option<FaultInjector>,
}

impl DetectorSimplexAgent {
    /// Wraps a trained PNN with threshold `sigma` and a fresh detector.
    pub fn new(
        pnn: PnnPolicy,
        sigma: f64,
        features: FeatureConfig,
        detector: DetectorConfig,
        seed: u64,
    ) -> Self {
        DetectorSimplexAgent {
            pnn,
            sigma,
            detector: PerturbationDetector::new(detector),
            extractor: FeatureExtractor::new(features),
            rng: StdRng::seed_from_u64(seed),
            last_command: None,
            last_realized: 0.0,
            hardened_steps: 0,
            total_steps: 0,
            latched: false,
            config: detector,
            obs_faults: None,
        }
    }

    /// Routes every observation through a sensor-side fault injector
    /// (camera freeze / dropout / NaN poisoning). The injector's step
    /// clock is advanced by this agent — do not share the instance with
    /// the actuation-side runner injector.
    pub fn with_observation_faults(mut self, injector: FaultInjector) -> Self {
        self.obs_faults = Some(injector);
        self
    }

    /// Fraction of steps driven by the hardened column so far.
    pub fn hardened_fraction(&self) -> f64 {
        if self.total_steps == 0 {
            0.0
        } else {
            self.hardened_steps as f64 / self.total_steps as f64
        }
    }

    /// Current budget estimate.
    pub fn estimated_budget(&self) -> f64 {
        self.detector.estimated_budget()
    }
}

impl Agent for DetectorSimplexAgent {
    fn reset(&mut self, _world: &World) {
        self.detector.reset();
        self.extractor.reset();
        self.last_command = None;
        self.last_realized = 0.0;
        self.hardened_steps = 0;
        self.total_steps = 0;
        self.latched = false;
        if let Some(inj) = self.obs_faults.as_mut() {
            inj.reset();
        }
    }

    fn act(&mut self, world: &World) -> Actuation {
        // Close the loop on the previous step: what did our command turn
        // into after the (possibly attacked) actuator smoothing?
        let realized = world.ego().actuation.steer;
        if let Some(nu) = self.last_command.take() {
            self.detector.observe(nu, self.last_realized, realized);
        }
        self.last_realized = realized;

        let mut obs = self.extractor.observe(world);
        if let Some(inj) = self.obs_faults.as_mut() {
            inj.begin_step();
            inj.corrupt_observation(&mut obs);
        }
        let detected = self.detector.estimated_budget() > self.sigma;
        let hardened = detected || self.latched;
        if detected && self.config.latching {
            self.latched = true;
        }
        self.total_steps += 1;
        if hardened {
            self.hardened_steps += 1;
        }
        let a = if hardened {
            self.pnn.act(&obs, &mut self.rng, true)
        } else {
            self.pnn.base().act(&obs, &mut self.rng, true)
        };
        let actuation = Actuation::new(a[0] as f64, a[1] as f64);
        self.last_command = Some(actuation.steer);
        actuation
    }
}

/// Ground-truth-budget switching as a policy is provided by
/// [`crate::defense::SimplexSwitcher`]; this free function estimates how
/// often a detector-driven switcher would agree with it over one attacked
/// episode, for diagnostics.
pub fn detection_agreement(
    detected: &DetectorSimplexAgent,
    true_budget: AttackBudget,
    sigma: f64,
) -> bool {
    (detected.estimated_budget() > sigma) == (true_budget.epsilon() > sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adv_reward::AdvReward;
    use crate::budget::AttackBudget;
    use crate::eval::run_attacked_episode;
    use drive_nn::gaussian::GaussianPolicy;
    use drive_nn::pnn::PnnInit;
    use drive_sim::scenario::Scenario;

    #[test]
    fn residual_recovers_injected_delta_exactly() {
        // Simulate Eq. (1) by hand with a known delta and check recovery.
        let config = DetectorConfig {
            noise_floor: 0.0,
            ..DetectorConfig::default()
        };
        let mut det = PerturbationDetector::new(config);
        let alpha = config.alpha;
        let mut a = 0.0;
        for step in 0..20 {
            let nu = 0.3;
            let delta = if step >= 10 { 0.5 } else { 0.0 };
            let a_next = (1.0 - alpha) * (nu + delta) + alpha * a;
            let est = det.observe(nu, a, a_next);
            assert!((est - delta).abs() < 1e-9, "step {step}: {est} vs {delta}");
            a = a_next;
        }
        assert!((det.estimated_budget() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn noise_floor_suppresses_small_residuals() {
        let mut det = PerturbationDetector::new(DetectorConfig::default());
        let alpha = DetectorConfig::default().alpha;
        let a_next = (1.0 - alpha) * (0.3 + 0.005) + alpha * 0.0;
        let est = det.observe(0.3, 0.0, a_next);
        assert_eq!(est, 0.0);
        assert_eq!(det.estimated_budget(), 0.0);
    }

    struct ConstantPush(f64);

    impl drive_agents::runner::SteerAttacker for ConstantPush {
        fn reset(&mut self, _world: &drive_sim::world::World) {}
        fn delta(&mut self, _world: &drive_sim::world::World) -> f64 {
            self.0
        }
    }

    #[test]
    fn detector_agent_detects_steering_injection() {
        let mut rng = StdRng::seed_from_u64(0);
        let features = FeatureConfig::default();
        let base = GaussianPolicy::new(features.observation_dim(), &[16], 2, &mut rng);
        let pnn = PnnPolicy::new(base, PnnInit::CopyBase, &mut rng);
        let scenario = Scenario::default();
        let adv = AdvReward::default();

        // Attacked episode: the detector must see a substantial budget.
        let mut agent = DetectorSimplexAgent::new(
            pnn.clone(),
            0.2,
            features.clone(),
            DetectorConfig::default(),
            1,
        );
        let mut push = ConstantPush(0.8);
        let _ = run_attacked_episode(&mut agent, Some(&mut push), &adv, &scenario, 3);
        assert!(
            agent.estimated_budget() > 0.3,
            "estimated {}",
            agent.estimated_budget()
        );
        assert!(agent.hardened_fraction() > 0.0);

        // Nominal episode: (almost) no detection.
        let mut clean = DetectorSimplexAgent::new(pnn, 0.2, features, DetectorConfig::default(), 1);
        let _ = run_attacked_episode(&mut clean, None, &adv, &scenario, 3);
        assert!(
            clean.estimated_budget() < 0.1,
            "estimated {} on clean episode",
            clean.estimated_budget()
        );
    }

    #[test]
    fn observation_faults_do_not_break_the_agent() {
        use drive_sim::faults::{FaultInjector, FaultSchedule};
        let mut rng = StdRng::seed_from_u64(0);
        let features = FeatureConfig::default();
        let base = GaussianPolicy::new(features.observation_dim(), &[8], 2, &mut rng);
        let pnn = PnnPolicy::new(base, PnnInit::CopyBase, &mut rng);
        // NaN-poisoned observations: the drive-nn input guard must keep
        // the policy output finite and the episode must complete.
        let mut agent = DetectorSimplexAgent::new(pnn, 0.2, features, DetectorConfig::default(), 2)
            .with_observation_faults(FaultInjector::new(&FaultSchedule::poisoned(0.5, 31)));
        let adv = AdvReward::default();
        let rec = run_attacked_episode(&mut agent, None, &adv, &Scenario::default(), 5);
        assert!(rec.steps > 0);
        assert!(rec.nominal_return.is_finite());
        assert_eq!(rec.nonfinite_actions, 0, "policy output stayed finite");
    }

    #[test]
    fn agreement_helper() {
        let mut rng = StdRng::seed_from_u64(0);
        let features = FeatureConfig::default();
        let base = GaussianPolicy::new(features.observation_dim(), &[8], 2, &mut rng);
        let pnn = PnnPolicy::new(base, PnnInit::CopyBase, &mut rng);
        let agent = DetectorSimplexAgent::new(pnn, 0.2, features, DetectorConfig::default(), 0);
        // Fresh agent estimates 0: agrees with a zero-budget truth.
        assert!(detection_agreement(&agent, AttackBudget::ZERO, 0.2));
        assert!(!detection_agreement(&agent, AttackBudget::new(1.0), 0.2));
    }
}
