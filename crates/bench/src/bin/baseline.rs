//! Regenerates the paper's §III baseline report via the experiment registry. See `repro_bench::cli`.

fn main() {
    std::process::exit(repro_bench::cli::main_for("baseline"));
}
