//! Process-wide simulation throughput counters.
//!
//! [`crate::world::World::step`] bumps a relaxed atomic on every advanced
//! control step, so harnesses can compute steps/sec across any number of
//! worker threads without plumbing counters through every call site. The
//! single relaxed `fetch_add` is noise next to a physics step.
//!
//! The fleet counters instrument batched evaluation: every
//! [`crate::batch::WorldBatch::step`] records one lockstep batch and how
//! many episode slots it advanced; the fleet driver additionally records
//! its configured capacity per lockstep iteration (for batch occupancy)
//! and the wall time spent inside batched policy inference (for amortized
//! ns/inference). All are process-wide monotonic totals — probes snapshot
//! and subtract.

use std::sync::atomic::{AtomicU64, Ordering};

static STEPS: AtomicU64 = AtomicU64::new(0);
static FLEET_BATCHES: AtomicU64 = AtomicU64::new(0);
static FLEET_SLOT_STEPS: AtomicU64 = AtomicU64::new(0);
static FLEET_CAPACITY: AtomicU64 = AtomicU64::new(0);
static FLEET_INFER_NS: AtomicU64 = AtomicU64::new(0);
static FLEET_INFER_ROWS: AtomicU64 = AtomicU64::new(0);
static FLEET_INFER_CALLS: AtomicU64 = AtomicU64::new(0);
static FLEET_CONTROL_NS: AtomicU64 = AtomicU64::new(0);
static FLEET_INTEGRATE_NS: AtomicU64 = AtomicU64::new(0);
static FLEET_OUTCOME_NS: AtomicU64 = AtomicU64::new(0);

/// Records `n` executed control steps.
#[inline]
pub fn record_steps(n: u64) {
    STEPS.fetch_add(n, Ordering::Relaxed);
}

/// Total control steps executed by this process so far.
pub fn steps() -> u64 {
    STEPS.load(Ordering::Relaxed)
}

/// Records one lockstep batch step that advanced `slots` episodes.
#[inline]
pub fn record_fleet_batch(slots: u64) {
    FLEET_BATCHES.fetch_add(1, Ordering::Relaxed);
    FLEET_SLOT_STEPS.fetch_add(slots, Ordering::Relaxed);
}

/// Records the configured fleet capacity behind one lockstep iteration
/// (denominator of batch occupancy).
#[inline]
pub fn record_fleet_capacity(slots: u64) {
    FLEET_CAPACITY.fetch_add(slots, Ordering::Relaxed);
}

/// Records one batched policy-inference call over `rows` observations
/// taking `ns` nanoseconds of wall time.
#[inline]
pub fn record_fleet_infer(ns: u64, rows: u64) {
    FLEET_INFER_NS.fetch_add(ns, Ordering::Relaxed);
    FLEET_INFER_ROWS.fetch_add(rows, Ordering::Relaxed);
    FLEET_INFER_CALLS.fetch_add(1, Ordering::Relaxed);
}

/// Records the wall time one batch step spent in each non-inference
/// phase: control (NPC policies + planners + sanitize), substep
/// integration, and the collision/outcome phase.
#[inline]
pub fn record_fleet_phases(control_ns: u64, integrate_ns: u64, outcome_ns: u64) {
    FLEET_CONTROL_NS.fetch_add(control_ns, Ordering::Relaxed);
    FLEET_INTEGRATE_NS.fetch_add(integrate_ns, Ordering::Relaxed);
    FLEET_OUTCOME_NS.fetch_add(outcome_ns, Ordering::Relaxed);
}

/// Snapshot of the fleet counters (process-wide monotonic totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetCounters {
    /// Lockstep batch steps executed.
    pub batches: u64,
    /// Episode slots advanced across all batch steps.
    pub slot_steps: u64,
    /// Sum of configured capacities across lockstep iterations.
    pub capacity: u64,
    /// Wall nanoseconds inside batched policy inference.
    pub infer_ns: u64,
    /// Observation rows pushed through batched inference.
    pub infer_rows: u64,
    /// Batched inference calls.
    pub infer_calls: u64,
    /// Wall nanoseconds inside the batched control phase.
    pub control_ns: u64,
    /// Wall nanoseconds inside batched substep integration.
    pub integrate_ns: u64,
    /// Wall nanoseconds inside the batched collision/outcome phase.
    pub outcome_ns: u64,
}

impl FleetCounters {
    /// Mean live slots per lockstep batch step (episodes in flight).
    pub fn episodes_in_flight(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.slot_steps as f64 / self.batches as f64
        }
    }

    /// Fraction of configured fleet capacity that held a live episode.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.slot_steps as f64 / self.capacity as f64
        }
    }

    /// Amortized nanoseconds per single-episode inference row.
    pub fn infer_ns_per_row(&self) -> f64 {
        if self.infer_rows == 0 {
            0.0
        } else {
            self.infer_ns as f64 / self.infer_rows as f64
        }
    }

    /// Amortized control-phase nanoseconds per advanced episode slot.
    pub fn control_ns_per_slot_step(&self) -> f64 {
        self.per_slot_step(self.control_ns)
    }

    /// Amortized integration nanoseconds per advanced episode slot.
    pub fn integrate_ns_per_slot_step(&self) -> f64 {
        self.per_slot_step(self.integrate_ns)
    }

    /// Amortized collision/outcome nanoseconds per advanced episode slot.
    pub fn outcome_ns_per_slot_step(&self) -> f64 {
        self.per_slot_step(self.outcome_ns)
    }

    fn per_slot_step(&self, ns: u64) -> f64 {
        if self.slot_steps == 0 {
            0.0
        } else {
            ns as f64 / self.slot_steps as f64
        }
    }

    /// Counter-wise difference `self - earlier` for interval probes.
    pub fn since(&self, earlier: &FleetCounters) -> FleetCounters {
        FleetCounters {
            batches: self.batches - earlier.batches,
            slot_steps: self.slot_steps - earlier.slot_steps,
            capacity: self.capacity - earlier.capacity,
            infer_ns: self.infer_ns - earlier.infer_ns,
            infer_rows: self.infer_rows - earlier.infer_rows,
            infer_calls: self.infer_calls - earlier.infer_calls,
            control_ns: self.control_ns - earlier.control_ns,
            integrate_ns: self.integrate_ns - earlier.integrate_ns,
            outcome_ns: self.outcome_ns - earlier.outcome_ns,
        }
    }
}

/// Current fleet counter totals.
pub fn fleet() -> FleetCounters {
    FleetCounters {
        batches: FLEET_BATCHES.load(Ordering::Relaxed),
        slot_steps: FLEET_SLOT_STEPS.load(Ordering::Relaxed),
        capacity: FLEET_CAPACITY.load(Ordering::Relaxed),
        infer_ns: FLEET_INFER_NS.load(Ordering::Relaxed),
        infer_rows: FLEET_INFER_ROWS.load(Ordering::Relaxed),
        infer_calls: FLEET_INFER_CALLS.load(Ordering::Relaxed),
        control_ns: FLEET_CONTROL_NS.load(Ordering::Relaxed),
        integrate_ns: FLEET_INTEGRATE_NS.load(Ordering::Relaxed),
        outcome_ns: FLEET_OUTCOME_NS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic() {
        let before = steps();
        record_steps(3);
        assert!(steps() >= before + 3);
    }

    #[test]
    fn world_step_records() {
        use crate::scenario::Scenario;
        use crate::vehicle::Actuation;
        let before = steps();
        let mut world = crate::world::World::new(Scenario::default());
        world.step(Actuation::new(0.0, 0.0));
        world.step(Actuation::new(0.0, 0.0));
        assert!(steps() >= before + 2);
    }

    #[test]
    fn fleet_counters_accumulate() {
        // Other tests step batches concurrently, so only monotonicity can
        // be asserted against the process-wide totals.
        let t0 = fleet();
        record_fleet_batch(24);
        record_fleet_capacity(32);
        record_fleet_infer(1_000, 24);
        let d = fleet().since(&t0);
        assert!(d.batches >= 1);
        assert!(d.slot_steps >= 24);
        assert!(d.capacity >= 32);
        assert!(d.infer_ns >= 1_000);
        assert!(d.infer_rows >= 24);
        assert!(d.infer_calls >= 1);
    }

    #[test]
    fn derived_metrics_from_fixed_counters() {
        let d = FleetCounters {
            batches: 2,
            slot_steps: 32,
            capacity: 64,
            infer_ns: 1_600,
            infer_rows: 32,
            infer_calls: 2,
            control_ns: 6_400,
            integrate_ns: 3_200,
            outcome_ns: 1_600,
        };
        assert!((d.episodes_in_flight() - 16.0).abs() < 1e-12);
        assert!((d.occupancy() - 0.5).abs() < 1e-12);
        assert!((d.infer_ns_per_row() - 50.0).abs() < 1e-12);
        assert!((d.control_ns_per_slot_step() - 200.0).abs() < 1e-12);
        assert!((d.integrate_ns_per_slot_step() - 100.0).abs() < 1e-12);
        assert!((d.outcome_ns_per_slot_step() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_derives_zero() {
        let d = FleetCounters::default();
        assert_eq!(d.episodes_in_flight(), 0.0);
        assert_eq!(d.occupancy(), 0.0);
        assert_eq!(d.infer_ns_per_row(), 0.0);
        assert_eq!(d.control_ns_per_slot_step(), 0.0);
        assert_eq!(d.integrate_ns_per_slot_step(), 0.0);
        assert_eq!(d.outcome_ns_per_slot_step(), 0.0);
    }

    #[test]
    fn phase_counters_accumulate() {
        let t0 = fleet();
        record_fleet_phases(100, 200, 300);
        let d = fleet().since(&t0);
        assert!(d.control_ns >= 100);
        assert!(d.integrate_ns >= 200);
        assert!(d.outcome_ns >= 300);
    }
}
