//! Per-episode recording shared by every experiment harness.
//!
//! An [`EpisodeRecord`] is filled in by the agent/attack runners and
//! consumed by `drive-metrics` to build the paper's figures: nominal and
//! adversarial returns (Fig. 4, Fig. 6), normalized trajectory deviation
//! and attack effort (Fig. 5, Fig. 7), success classification and timing
//! (Fig. 8, §V-B).

use crate::world::{CollisionEvent, CollisionKind, Termination};
use serde::{Deserialize, Serialize};

/// Perturbations below this magnitude do not count as the start of an
/// attack attempt (learned policies emit tiny non-zero means even when
/// "quiet"; the paper's attack effort is measured over the attempt).
pub const ATTACK_START_THRESHOLD: f64 = 0.02;

/// Everything measured over one episode.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EpisodeRecord {
    /// Control steps executed.
    pub steps: usize,
    /// Control period, seconds.
    pub dt: f64,
    /// How the episode ended.
    pub termination: Option<Termination>,
    /// Collision, if one ended the episode.
    pub collision: Option<CollisionEvent>,
    /// NPC vehicles fully passed.
    pub passed: usize,
    /// Cumulative nominal driving reward.
    pub nominal_return: f64,
    /// Cumulative adversarial reward (0 when unattacked).
    pub adv_return: f64,
    /// Per-step trajectory deviation, normalized by half the lane width.
    pub deviation: Vec<f64>,
    /// Per-step injected steering perturbation magnitude `|delta|`
    /// (empty / zeros when unattacked).
    pub perturbation: Vec<f64>,
    /// Step at which the attacker first injected a non-zero perturbation.
    pub attack_start: Option<usize>,
    /// Commanded actions with a non-finite channel that the simulator
    /// sanitized before stepping (0 in healthy episodes).
    pub nonfinite_actions: usize,
}

impl EpisodeRecord {
    /// Whether the episode ended in the attacker's desired side collision.
    pub fn side_collision(&self) -> bool {
        matches!(
            self.collision,
            Some(CollisionEvent {
                kind: CollisionKind::Side,
                ..
            })
        )
    }

    /// Whether the episode counts as a *successful attack*: a side
    /// collision that happened at or after the attack attempt began. A
    /// side collision with no preceding perturbation is the victim's own
    /// doing and is not credited to the attacker.
    pub fn attack_success(&self) -> bool {
        match (self.attack_start, self.collision) {
            (Some(start), Some(c)) => matches!(c.kind, CollisionKind::Side) && c.step >= start,
            _ => false,
        }
    }

    /// Root-mean-square of the normalized trajectory deviation.
    pub fn deviation_rmse(&self) -> f64 {
        if self.deviation.is_empty() {
            return 0.0;
        }
        let ms = self.deviation.iter().map(|d| d * d).sum::<f64>() / self.deviation.len() as f64;
        ms.sqrt()
    }

    /// The paper's *attack effort* (x-axis of Fig. 5 and Fig. 7): total
    /// perturbation injected during the attack attempt, averaged over the
    /// attempt's steps (from the first non-zero perturbation to episode
    /// end). Zero when no attack was ever injected.
    pub fn attack_effort(&self) -> f64 {
        let Some(start) = self.attack_start else {
            return 0.0;
        };
        let active = &self.perturbation[start.min(self.perturbation.len())..];
        if active.is_empty() {
            return 0.0;
        }
        active.iter().sum::<f64>() / active.len() as f64
    }

    /// Fraction of episode steps with an active (above-threshold)
    /// perturbation — a stealthiness measure: the paper's attacker is
    /// designed to "lurk until a safety-critical moment arises".
    pub fn attack_duty_cycle(&self) -> f64 {
        if self.perturbation.is_empty() {
            return 0.0;
        }
        let active = self
            .perturbation
            .iter()
            .filter(|p| **p > ATTACK_START_THRESHOLD)
            .count();
        active as f64 / self.perturbation.len() as f64
    }

    /// Time from attack activation to the collision, seconds, if the attack
    /// produced one (the §V-B timing statistic).
    pub fn time_to_collision(&self) -> Option<f64> {
        let start = self.attack_start?;
        let collision = self.collision?;
        if collision.step >= start {
            Some((collision.step - start) as f64 * self.dt)
        } else {
            None
        }
    }
}

/// Version tag of the [`encode_records`] text format.
const RECORDS_VERSION: &str = "v1";

fn kind_name(k: CollisionKind) -> &'static str {
    match k {
        CollisionKind::Side => "side",
        CollisionKind::RearEnd => "rear",
        CollisionKind::Other => "other",
        CollisionKind::Barrier => "barrier",
    }
}

fn kind_from(s: &str) -> Result<CollisionKind, String> {
    match s {
        "side" => Ok(CollisionKind::Side),
        "rear" => Ok(CollisionKind::RearEnd),
        "other" => Ok(CollisionKind::Other),
        "barrier" => Ok(CollisionKind::Barrier),
        other => Err(format!("unknown collision kind '{other}'")),
    }
}

fn push_collision(buf: &mut String, c: &CollisionEvent) {
    let npc = match c.npc_index {
        Some(i) => i.to_string(),
        None => "-".to_string(),
    };
    buf.push_str(&format!("{} {npc} {}", kind_name(c.kind), c.step));
}

fn parse_collision(args: &[&str]) -> Result<CollisionEvent, String> {
    if args.len() != 3 {
        return Err(format!(
            "collision needs '<kind> <npc|-> <step>', got {args:?}"
        ));
    }
    let kind = kind_from(args[0])?;
    let npc_index = if args[1] == "-" {
        None
    } else {
        Some(
            args[1]
                .parse()
                .map_err(|_| format!("bad npc index '{}'", args[1]))?,
        )
    };
    let step = args[2]
        .parse()
        .map_err(|_| format!("bad collision step '{}'", args[2]))?;
    Ok(CollisionEvent {
        kind,
        npc_index,
        step,
    })
}

fn write_f64s(buf: &mut String, values: &[f64]) {
    // `{}` formatting produces the shortest round-trip representation, so
    // the parsed values are bit-identical to the originals.
    for chunk in values.chunks(8) {
        let mut first = true;
        for v in chunk {
            if !first {
                buf.push(' ');
            }
            buf.push_str(&format!("{v}"));
            first = false;
        }
        buf.push('\n');
    }
}

/// Line cursor over the record text (drive-sim keeps its codec
/// self-contained instead of depending on the network crate's reader).
struct Cursor<'a> {
    lines: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor {
            lines: text.lines(),
            line_no: 0,
        }
    }

    fn next(&mut self) -> Result<&'a str, String> {
        loop {
            self.line_no += 1;
            match self.lines.next() {
                Some(l) if l.trim().is_empty() => continue,
                Some(l) => return Ok(l.trim()),
                None => return Err("unexpected end of record text".to_string()),
            }
        }
    }

    fn tag(&mut self, want: &str) -> Result<Vec<&'a str>, String> {
        let line = self.next()?;
        let mut parts = line.split_whitespace();
        let head = parts.next().ok_or("empty line")?;
        if head != want {
            return Err(format!(
                "line {}: expected tag '{want}', found '{head}'",
                self.line_no
            ));
        }
        Ok(parts.collect())
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, String> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let line = self.next()?;
            for tok in line.split_whitespace() {
                let v: f64 = tok
                    .parse()
                    .map_err(|_| format!("line {}: bad float '{tok}'", self.line_no))?;
                out.push(v);
            }
        }
        if out.len() != n {
            return Err(format!("expected {n} floats, found {}", out.len()));
        }
        Ok(out)
    }
}

/// Serializes a slice of records to a versioned plain-text block that
/// [`decode_records`] parses back bit-identically — the payload format of
/// the bench journal's per-cell sidecar files, so a resumed run replays
/// exactly the records the killed run computed.
pub fn encode_records(records: &[EpisodeRecord]) -> String {
    let mut buf = String::new();
    buf.push_str(&format!("records {RECORDS_VERSION} {}\n", records.len()));
    for r in records {
        buf.push_str(&format!(
            "rec {} {} {} {} {} {}\n",
            r.steps, r.dt, r.passed, r.nominal_return, r.adv_return, r.nonfinite_actions
        ));
        match &r.termination {
            None => buf.push_str("term none\n"),
            Some(Termination::TimeLimit) => buf.push_str("term time\n"),
            Some(Termination::RoadEnd) => buf.push_str("term road\n"),
            Some(Termination::Collision(c)) => {
                buf.push_str("term coll ");
                push_collision(&mut buf, c);
                buf.push('\n');
            }
        }
        match &r.collision {
            None => buf.push_str("coll none\n"),
            Some(c) => {
                buf.push_str("coll ");
                push_collision(&mut buf, c);
                buf.push('\n');
            }
        }
        match r.attack_start {
            None => buf.push_str("astart none\n"),
            Some(s) => buf.push_str(&format!("astart {s}\n")),
        }
        buf.push_str(&format!("dev {}\n", r.deviation.len()));
        write_f64s(&mut buf, &r.deviation);
        buf.push_str(&format!("pert {}\n", r.perturbation.len()));
        write_f64s(&mut buf, &r.perturbation);
    }
    buf
}

/// Parses text produced by [`encode_records`].
///
/// # Errors
///
/// Returns a message on a version mismatch or any structural defect; the
/// caller (the bench journal) treats any error as "recompute this cell".
pub fn decode_records(text: &str) -> Result<Vec<EpisodeRecord>, String> {
    let mut c = Cursor::new(text);
    let args = c.tag("records")?;
    if args.len() != 2 {
        return Err("records tag needs '<version> <count>'".to_string());
    }
    if args[0] != RECORDS_VERSION {
        return Err(format!(
            "unsupported record format version '{}' (this build reads '{RECORDS_VERSION}')",
            args[0]
        ));
    }
    let count: usize = args[1]
        .parse()
        .map_err(|_| format!("bad record count '{}'", args[1]))?;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let rec_args = c.tag("rec")?;
        if rec_args.len() != 6 {
            return Err(format!(
                "rec needs '<steps> <dt> <passed> <nominal> <adv> <nonfinite>', got {rec_args:?}"
            ));
        }
        let steps: usize = rec_args[0]
            .parse()
            .map_err(|_| format!("bad steps '{}'", rec_args[0]))?;
        let dt: f64 = rec_args[1]
            .parse()
            .map_err(|_| format!("bad dt '{}'", rec_args[1]))?;
        let passed: usize = rec_args[2]
            .parse()
            .map_err(|_| format!("bad passed '{}'", rec_args[2]))?;
        let nominal_return: f64 = rec_args[3]
            .parse()
            .map_err(|_| format!("bad nominal return '{}'", rec_args[3]))?;
        let adv_return: f64 = rec_args[4]
            .parse()
            .map_err(|_| format!("bad adversarial return '{}'", rec_args[4]))?;
        let nonfinite_actions: usize = rec_args[5]
            .parse()
            .map_err(|_| format!("bad non-finite count '{}'", rec_args[5]))?;
        let term_args = c.tag("term")?;
        let termination = match term_args.first() {
            Some(&"none") => None,
            Some(&"time") => Some(Termination::TimeLimit),
            Some(&"road") => Some(Termination::RoadEnd),
            Some(&"coll") => Some(Termination::Collision(parse_collision(&term_args[1..])?)),
            other => return Err(format!("bad termination {other:?}")),
        };
        let coll_args = c.tag("coll")?;
        let collision = match coll_args.first() {
            Some(&"none") => None,
            Some(_) => Some(parse_collision(&coll_args)?),
            None => return Err("coll tag needs a value".to_string()),
        };
        let astart_args = c.tag("astart")?;
        let attack_start = match astart_args.first() {
            Some(&"none") => None,
            Some(tok) => Some(
                tok.parse()
                    .map_err(|_| format!("bad attack start '{tok}'"))?,
            ),
            None => return Err("astart tag needs a value".to_string()),
        };
        let dev_args = c.tag("dev")?;
        let ndev: usize = dev_args
            .first()
            .ok_or("dev tag needs a count")?
            .parse()
            .map_err(|_| "bad deviation count".to_string())?;
        let deviation = c.f64s(ndev)?;
        let pert_args = c.tag("pert")?;
        let npert: usize = pert_args
            .first()
            .ok_or("pert tag needs a count")?
            .parse()
            .map_err(|_| "bad perturbation count".to_string())?;
        let perturbation = c.f64s(npert)?;
        out.push(EpisodeRecord {
            steps,
            dt,
            termination,
            collision,
            passed,
            nominal_return,
            adv_return,
            deviation,
            perturbation,
            attack_start,
            nonfinite_actions,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> EpisodeRecord {
        EpisodeRecord {
            steps: 4,
            dt: 0.1,
            deviation: vec![0.0, 0.3, -0.4, 0.0],
            perturbation: vec![0.0, 0.5, 1.0, 0.5],
            attack_start: Some(1),
            collision: Some(CollisionEvent {
                kind: CollisionKind::Side,
                npc_index: Some(0),
                step: 3,
            }),
            termination: None,
            passed: 0,
            nominal_return: 0.0,
            adv_return: 0.0,
            nonfinite_actions: 0,
        }
    }

    #[test]
    fn codec_round_trips_every_variant_bit_exactly() {
        let records = vec![
            rec(),
            EpisodeRecord::default(),
            EpisodeRecord {
                steps: 250,
                dt: 0.05,
                termination: Some(Termination::TimeLimit),
                collision: None,
                passed: 3,
                nominal_return: -1.25e-3,
                adv_return: std::f64::consts::PI,
                deviation: (0..20).map(|i| (i as f64).sin()).collect(),
                perturbation: vec![],
                attack_start: None,
                nonfinite_actions: 2,
            },
            EpisodeRecord {
                termination: Some(Termination::RoadEnd),
                collision: Some(CollisionEvent {
                    kind: CollisionKind::Barrier,
                    npc_index: None,
                    step: 17,
                }),
                ..rec()
            },
            EpisodeRecord {
                termination: Some(Termination::Collision(CollisionEvent {
                    kind: CollisionKind::RearEnd,
                    npc_index: Some(4),
                    step: 99,
                })),
                collision: Some(CollisionEvent {
                    kind: CollisionKind::Other,
                    npc_index: Some(4),
                    step: 99,
                }),
                ..rec()
            },
        ];
        let text = encode_records(&records);
        let back = decode_records(&text).expect("decode");
        assert_eq!(back, records);
        // Digest stability: re-encoding the decoded records is byte-identical.
        assert_eq!(encode_records(&back), text);
        // Empty set round trips too.
        assert_eq!(decode_records(&encode_records(&[])).unwrap(), vec![]);
    }

    #[test]
    fn codec_rejects_malformed_input_without_panicking() {
        assert!(decode_records("").is_err());
        assert!(decode_records("records v0 1").is_err(), "version mismatch");
        assert!(decode_records("records v1 not-a-number").is_err());
        // Truncated mid-record.
        let text = encode_records(&[rec(), rec()]);
        let cut = &text[..text.len() / 2];
        assert!(decode_records(cut).is_err());
        // Corrupted collision kind.
        let bad = text.replacen("side", "frontal", 1);
        assert!(decode_records(&bad).is_err());
    }

    #[test]
    fn rmse_matches_hand_computation() {
        let r = rec();
        let expected = ((0.09 + 0.16) / 4.0f64).sqrt();
        assert!((r.deviation_rmse() - expected).abs() < 1e-12);
        assert_eq!(EpisodeRecord::default().deviation_rmse(), 0.0);
    }

    #[test]
    fn effort_is_mean_over_attack_attempt() {
        // Attack starts at step 1: effort = (0.5 + 1.0 + 0.5) / 3.
        let r = rec();
        assert!((r.attack_effort() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(EpisodeRecord::default().attack_effort(), 0.0);
        // No attack_start → zero even with recorded perturbations.
        let mut r2 = rec();
        r2.attack_start = None;
        assert_eq!(r2.attack_effort(), 0.0);
    }

    #[test]
    fn duty_cycle_counts_active_steps() {
        let r = rec();
        // Steps with |delta| > threshold: 0.5, 1.0, 0.5 of 4 steps.
        assert!((r.attack_duty_cycle() - 0.75).abs() < 1e-12);
        assert_eq!(EpisodeRecord::default().attack_duty_cycle(), 0.0);
    }

    #[test]
    fn attack_success_requires_attacker_involvement() {
        assert!(rec().attack_success());
        // Same side collision without any attack attempt: not a success.
        let mut own_goal = rec();
        own_goal.attack_start = None;
        assert!(own_goal.side_collision());
        assert!(!own_goal.attack_success());
        // Collision before the attack began: not a success either.
        let mut early = rec();
        early.attack_start = Some(4);
        assert!(!early.attack_success());
    }

    #[test]
    fn side_collision_detection() {
        assert!(rec().side_collision());
        let mut r = rec();
        r.collision = Some(CollisionEvent {
            kind: CollisionKind::RearEnd,
            npc_index: Some(0),
            step: 3,
        });
        assert!(!r.side_collision());
        r.collision = None;
        assert!(!r.side_collision());
    }

    #[test]
    fn time_to_collision_uses_attack_start() {
        let r = rec();
        assert!((r.time_to_collision().unwrap() - 0.2).abs() < 1e-12);
        let mut r2 = rec();
        r2.attack_start = None;
        assert_eq!(r2.time_to_collision(), None);
    }
}
