//! Fig. 5 — end-to-end vs modular driving agents under camera attacks,
//! plus the §V-B attack-to-collision timing statistics.
//!
//! Budgets sweep `0.0..=1.2` in steps of 0.1 with several rounds each; each
//! episode becomes one scatter point (mean attack effort vs trajectory-
//! deviation RMSE, marked by side-collision success). The paper finds
//! success dominating above effort ≈0.5 for the end-to-end agent and ≈0.6
//! for the modular one, lower tracking error for the modular agent at low
//! effort, and mean times-to-collision of 0.87 s (e2e) / 1.14 s (modular).

use crate::engine::{Experiment, ExperimentOutput, RunContext};
use crate::harness::{attacked_records, AgentKind};
use attack_core::budget::AttackBudget;
use attack_core::sensor::SensorKind;
use drive_metrics::agg::mean;
use drive_metrics::episode::{
    dominance_threshold, scatter_points, time_to_collision_stats, ScatterPoint,
};
use drive_metrics::export::Csv;
use drive_metrics::report::{fmt_f, Table};
use drive_seed::SeedTree;
use drive_sim::record::EpisodeRecord;
use std::sync::Arc;

/// Per-agent series of the Fig. 5 sweep.
#[derive(Debug, Clone)]
pub struct Fig5Series {
    /// Which agent was attacked.
    pub agent: AgentKind,
    /// All episode records of the sweep.
    pub records: Vec<EpisodeRecord>,
    /// Scatter points (one per episode).
    pub points: Vec<ScatterPoint>,
    /// Effort level above which successful attacks dominate (≥50 %).
    pub dominance: Option<f64>,
    /// Mean deviation RMSE at low effort (< 0.3) — tracking quality.
    pub low_effort_deviation: f64,
    /// `(mean, min)` attack-to-collision time over successes, seconds.
    pub time_to_collision: Option<(f64, f64)>,
    /// Mean fraction of steps with an active perturbation (stealthiness).
    pub mean_duty_cycle: f64,
}

/// Full Fig. 5 result.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// The modular and end-to-end series.
    pub series: Vec<Fig5Series>,
}

impl Fig5Result {
    /// The series for an agent, if present.
    pub fn series(&self, agent: AgentKind) -> Option<&Fig5Series> {
        self.series.iter().find(|s| s.agent == agent)
    }
}

impl Fig5Result {
    /// Exports the scatter as CSV (one row per episode).
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new(["agent", "effort", "deviation_rmse", "success"]);
        for s in &self.series {
            for p in &s.points {
                csv.row([
                    s.agent.label().to_string(),
                    format!("{:.4}", p.effort),
                    format!("{:.5}", p.deviation_rmse),
                    p.success.to_string(),
                ]);
            }
        }
        csv
    }
}

/// Builds per-series scatter SVGs named `<stem_prefix>_<agent>`, titled
/// `<title_prefix> — <agent> under camera attack` (shared by Fig. 5 and
/// Fig. 7, whose series have the same shape).
pub(crate) fn scatter_svgs(
    stem_prefix: &str,
    title_prefix: &str,
    series: &[Fig5Series],
) -> Vec<(String, String)> {
    series
        .iter()
        .map(|s| {
            (
                format!(
                    "{stem_prefix}_{}",
                    s.agent.label().replace(['(', ')', '=', '/'], "_")
                ),
                drive_metrics::svg::scatter_svg(
                    &format!("{title_prefix} — {} under camera attack", s.agent.label()),
                    &s.points,
                    "attack effort",
                    "deviation RMSE",
                ),
            )
        })
        .collect()
}

/// Runs the camera-attack sweep for one agent within the given seed
/// namespace (each budget cell derives from `seeds/eps<budget>`).
///
/// The 13 budget cells are independent (per-cell seed subtrees, fresh
/// agents per cell), so they run in parallel; concatenating the
/// index-ordered results reproduces the serial record order exactly.
pub fn sweep_agent(agent: AgentKind, ctx: &RunContext, seeds: &SeedTree) -> Fig5Series {
    let budgets = AttackBudget::fig5_grid();
    let per_budget = drive_par::par_map(&budgets, |_, &budget| {
        let attack = if budget.is_zero() {
            None
        } else {
            Some((&ctx.artifacts.camera_attacker, SensorKind::Camera))
        };
        attacked_records(
            agent,
            attack,
            budget,
            ctx,
            ctx.scale.scatter_rounds,
            &seeds.child(format!("eps{:.2}", budget.epsilon())),
        )
    });
    let records: Vec<_> = per_budget.into_iter().flatten().collect();
    let points = scatter_points(&records);
    let low: Vec<f64> = points
        .iter()
        .filter(|p| p.effort < 0.3)
        .map(|p| p.deviation_rmse)
        .collect();
    let duty: Vec<f64> = records.iter().map(|r| r.attack_duty_cycle()).collect();
    Fig5Series {
        agent,
        dominance: dominance_threshold(&points, 0.5),
        low_effort_deviation: mean(&low),
        time_to_collision: time_to_collision_stats(&records),
        mean_duty_cycle: mean(&duty),
        records,
        points,
    }
}

/// Runs (or reuses) the full Fig. 5 experiment (modular vs end-to-end)
/// via the context memo.
pub fn run(ctx: &RunContext) -> Arc<Fig5Result> {
    ctx.memo("fig5", || {
        let ns = ctx.seeds_for("fig5");
        Fig5Result {
            series: [AgentKind::E2e, AgentKind::Modular]
                .into_iter()
                .map(|a| sweep_agent(a, ctx, &ns.child(a.label())))
                .collect(),
        }
    })
}

/// Registry entry for Fig. 5.
pub struct Fig5Experiment;

impl Experiment for Fig5Experiment {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn description(&self) -> &'static str {
        "Deviation vs attack effort scatter for the e2e and modular agents (camera attack)"
    }

    fn cells(&self) -> usize {
        2 * AttackBudget::fig5_grid().len()
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let r = run(ctx);
        ExperimentOutput {
            report: r.to_string(),
            csvs: vec![("fig5".to_string(), r.to_csv())],
            svgs: scatter_svgs("fig5", "Fig. 5", &r.series),
        }
    }
}

impl std::fmt::Display for Fig5Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 5 — deviation vs attack effort (camera attack)")?;
        let mut t = Table::new([
            "agent",
            "episodes",
            "successes",
            "dominance effort",
            "low-effort RMSE",
            "ttc mean (s)",
            "ttc min (s)",
            "duty cycle",
        ]);
        for s in &self.series {
            let successes = s.points.iter().filter(|p| p.success).count();
            let (ttc_mean, ttc_min) = s
                .time_to_collision
                .map(|(m, n)| (fmt_f(m, 2), fmt_f(n, 2)))
                .unwrap_or_else(|| ("-".into(), "-".into()));
            t.row([
                s.agent.label().to_string(),
                s.points.len().to_string(),
                successes.to_string(),
                s.dominance
                    .map(|d| fmt_f(d, 2))
                    .unwrap_or_else(|| "-".into()),
                fmt_f(s.low_effort_deviation, 3),
                ttc_mean,
                ttc_min,
                fmt_f(s.mean_duty_cycle, 2),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "paper: dominance ~0.5 (e2e) vs ~0.6 (modular); ttc 0.87s/0.30s (e2e) vs 1.14s/0.90s (modular); human ~1.25s"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;
    use attack_core::pipeline::{prepare, PipelineConfig};

    #[test]
    fn smoke_fig5_sweeps_both_agents() {
        let dir = std::env::temp_dir().join("repro-bench-fig5-test");
        let config = PipelineConfig::quick(&dir);
        let artifacts = prepare(&config);
        let ctx = RunContext::new(&artifacts, &config, Scale::smoke());
        let result = run(&ctx);
        assert_eq!(result.series.len(), 2);
        let e2e = result.series(AgentKind::E2e).unwrap();
        // 13 budgets x smoke rounds.
        assert_eq!(e2e.points.len(), 13 * Scale::smoke().scatter_rounds);
        // Zero-budget episodes have zero effort.
        assert!(e2e.points.iter().any(|p| p.effort == 0.0));
        let text = format!("{result}");
        assert!(text.contains("modular"));
        assert_eq!(
            result.to_csv().len(),
            2 * 13 * Scale::smoke().scatter_rounds
        );
        let svgs = scatter_svgs("fig5", "Fig. 5", &result.series);
        assert_eq!(svgs.len(), 2);
        assert!(svgs[0].0.starts_with("fig5_"));
    }
}
