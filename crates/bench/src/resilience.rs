//! Hardened experiment execution: per-episode panic isolation, bounded
//! retry with reseeding, a per-cell wall-clock watchdog, and partial-result
//! export.
//!
//! The figure harnesses run thousands of episodes; one poisoned episode (a
//! panic in an agent, a degenerate scenario) used to abort the whole run
//! and lose every completed cell. [`run_cell`] isolates each episode behind
//! `catch_unwind`, retries a failed episode a bounded number of times with
//! a reseeded RNG stream, stops early when the cell exceeds its wall-clock
//! budget, and always returns whatever completed — which
//! [`CellOutcome::to_csv`] can export with a per-episode status column so a
//! partial run is still analyzable.

use drive_core::retry::{self, Attempt, Exhausted, RetryPolicy};
use drive_metrics::export::Csv;
use drive_sim::record::EpisodeRecord;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Seed offset applied per retry so a reattempt does not replay the exact
/// failing stream (odd constant from the SplitMix64 increment).
pub const RESEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Knobs for [`run_cell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Attempts per episode (first try + retries); min 1.
    pub max_attempts: usize,
    /// Soft wall-clock budget for the whole cell. Checked between
    /// episodes (episodes are not preempted mid-flight); `None` disables
    /// the watchdog.
    pub cell_budget: Option<Duration>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_attempts: 3,
            cell_budget: None,
        }
    }
}

/// One successfully completed episode.
#[derive(Debug, Clone)]
pub struct EpisodeRun {
    /// Index within the cell.
    pub episode: usize,
    /// Seed the successful attempt ran with.
    pub seed: u64,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: usize,
    /// The record.
    pub record: EpisodeRecord,
}

/// One episode that exhausted its retry budget.
#[derive(Debug, Clone)]
pub struct EpisodeFailure {
    /// Index within the cell.
    pub episode: usize,
    /// Seed of the final failing attempt.
    pub seed: u64,
    /// Attempts consumed.
    pub attempts: usize,
    /// Panic payload of the final attempt, stringified.
    pub reason: String,
}

/// Everything a hardened cell run produced.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Completed episodes, in order.
    pub runs: Vec<EpisodeRun>,
    /// Episodes that failed every attempt.
    pub failures: Vec<EpisodeFailure>,
    /// Episodes requested.
    pub requested: usize,
    /// Episodes actually attempted before the watchdog (if any) fired.
    pub attempted: usize,
    /// Wall-clock time the cell took.
    pub elapsed: Duration,
}

impl CellOutcome {
    /// True when every requested episode produced a record.
    pub fn complete(&self) -> bool {
        self.runs.len() == self.requested
    }

    /// True when the wall-clock watchdog cut the cell short.
    pub fn timed_out(&self) -> bool {
        self.attempted < self.requested
    }

    /// The completed records, dropping episode bookkeeping.
    pub fn into_records(self) -> Vec<EpisodeRecord> {
        self.runs.into_iter().map(|r| r.record).collect()
    }

    /// Per-episode export with a `status` column (`ok` / `failed` /
    /// `skipped`), so partial results survive a degraded run.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new([
            "episode",
            "seed",
            "status",
            "attempts",
            "steps",
            "passed",
            "collision",
            "attack_success",
            "nominal_return",
            "adv_return",
            "nonfinite_actions",
        ]);
        for run in &self.runs {
            let r = &run.record;
            csv.row([
                run.episode.to_string(),
                run.seed.to_string(),
                "ok".to_string(),
                run.attempts.to_string(),
                r.steps.to_string(),
                r.passed.to_string(),
                r.collision.is_some().to_string(),
                r.attack_success().to_string(),
                format!("{:.3}", r.nominal_return),
                format!("{:.3}", r.adv_return),
                r.nonfinite_actions.to_string(),
            ]);
        }
        for f in &self.failures {
            csv.row([
                f.episode.to_string(),
                f.seed.to_string(),
                "failed".to_string(),
                f.attempts.to_string(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
        }
        for episode in self.attempted..self.requested {
            csv.row([
                episode.to_string(),
                String::new(),
                "skipped".to_string(),
                "0".to_string(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
        }
        csv
    }
}

fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs `requested` episodes through `run_one`, isolating each behind
/// `catch_unwind`.
///
/// Episode `e`'s first attempt uses seed `base_seed + e` — identical to
/// the naive loop, so healthy runs reproduce bit-for-bit. A panicking
/// attempt is retried up to [`ResilienceConfig::max_attempts`] times, each
/// retry offsetting the seed by [`RESEED_STRIDE`]; an episode that
/// exhausts its attempts is recorded as an [`EpisodeFailure`] and the cell
/// moves on. The wall-clock budget is checked between episodes: once
/// exceeded, remaining episodes are skipped (visible via
/// [`CellOutcome::timed_out`]).
///
/// `run_one` must leave shared state usable after a panic; agents heal via
/// their episode-start `reset`, which is why the runner resets everything
/// before stepping.
pub fn run_cell(
    requested: usize,
    base_seed: u64,
    config: &ResilienceConfig,
    mut run_one: impl FnMut(u64) -> EpisodeRecord,
) -> CellOutcome {
    let start = Instant::now();
    let mut outcome = CellOutcome {
        runs: Vec::with_capacity(requested),
        failures: Vec::new(),
        requested,
        attempted: 0,
        elapsed: Duration::ZERO,
    };
    for episode in 0..requested {
        if let Some(budget) = config.cell_budget {
            if start.elapsed() >= budget {
                break;
            }
        }
        outcome.attempted += 1;
        // The shared retry engine drives the attempts; the per-attempt
        // seed offset (`base + episode`, then `+ attempt * RESEED_STRIDE`)
        // is identical to the historical hand-rolled loop, so healthy runs
        // and recorded retry seeds reproduce bit-for-bit.
        let policy = RetryPolicy::attempts(config.max_attempts);
        let result = retry::run(&policy, base_seed, |attempt| {
            let seed = (base_seed + episode as u64)
                .wrapping_add((attempt as u64).wrapping_mul(RESEED_STRIDE));
            match catch_unwind(AssertUnwindSafe(|| run_one(seed))) {
                Ok(record) => Ok((seed, record)),
                Err(payload) => Err((seed, panic_reason(payload))),
            }
        });
        match result {
            Ok(Attempt {
                value: (seed, record),
                attempts,
            }) => outcome.runs.push(EpisodeRun {
                episode,
                seed,
                attempts,
                record,
            }),
            Err(Exhausted {
                attempts,
                last: (seed, reason),
            }) => outcome.failures.push(EpisodeFailure {
                episode,
                seed,
                attempts,
                reason,
            }),
        }
    }
    outcome.elapsed = start.elapsed();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_record(seed: u64) -> EpisodeRecord {
        EpisodeRecord {
            steps: 10,
            dt: 0.1,
            nominal_return: seed as f64,
            ..EpisodeRecord::default()
        }
    }

    #[test]
    fn healthy_cell_matches_naive_seeding() {
        let outcome = run_cell(4, 100, &ResilienceConfig::default(), fake_record);
        assert!(outcome.complete());
        assert!(!outcome.timed_out());
        assert_eq!(outcome.failures.len(), 0);
        let seeds: Vec<u64> = outcome.runs.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![100, 101, 102, 103]);
        assert!(outcome.runs.iter().all(|r| r.attempts == 1));
    }

    #[test]
    fn poisoned_episode_is_retried_with_new_seed() {
        let mut calls = 0;
        let outcome = run_cell(3, 0, &ResilienceConfig::default(), |seed| {
            calls += 1;
            // Episode 1's first attempt (seed == 1) panics; its retry
            // (seed offset by the stride) succeeds.
            if seed == 1 {
                panic!("poisoned episode");
            }
            fake_record(seed)
        });
        assert!(outcome.complete(), "retry must recover the episode");
        assert_eq!(calls, 4, "3 episodes + 1 retry");
        let retried = &outcome.runs[1];
        assert_eq!(retried.episode, 1);
        assert_eq!(retried.attempts, 2);
        assert_eq!(retried.seed, 1 + RESEED_STRIDE);
    }

    #[test]
    fn persistent_failure_is_bounded_and_reported() {
        let mut calls = 0;
        let outcome = run_cell(
            2,
            0,
            &ResilienceConfig {
                max_attempts: 3,
                cell_budget: None,
            },
            |seed| {
                calls += 1;
                // Episode 0's three attempt seeds — fail all of them.
                let ep0 = [0, RESEED_STRIDE, RESEED_STRIDE.wrapping_mul(2)];
                if ep0.contains(&seed) {
                    panic!("always broken");
                }
                fake_record(seed)
            },
        );
        assert!(!outcome.complete());
        assert_eq!(calls, 4, "3 failed attempts + 1 healthy episode");
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].episode, 0);
        assert_eq!(outcome.failures[0].attempts, 3);
        assert_eq!(outcome.failures[0].reason, "always broken");
        assert_eq!(outcome.runs.len(), 1);
    }

    #[test]
    fn wall_clock_watchdog_skips_remaining_episodes() {
        let outcome = run_cell(
            5,
            0,
            &ResilienceConfig {
                max_attempts: 1,
                cell_budget: Some(Duration::ZERO),
            },
            fake_record,
        );
        assert_eq!(outcome.attempted, 0);
        assert!(outcome.timed_out());
        let csv = outcome.to_csv();
        assert_eq!(csv.len(), 5, "skipped episodes still appear in export");
        assert!(csv.to_csv_string().contains("skipped"));
    }

    #[test]
    fn poisoned_figure_cell_retries_and_exports_partial_results() {
        use drive_agents::modular::{ModularAgent, ModularConfig};
        use drive_agents::runner::run_episode;
        use drive_sim::scenario::Scenario;

        // One artificially-poisoned episode in a real figure-style cell:
        // the first attempt of episode 1 panics, the retry completes, and
        // the partial CSV export succeeds instead of the run aborting.
        let scenario = Scenario::default();
        let outcome = run_cell(3, 50, &ResilienceConfig::default(), |seed| {
            if seed == 51 {
                panic!("artificially poisoned episode");
            }
            let mut agent = ModularAgent::new(ModularConfig::default(), 1);
            run_episode(&mut agent, &scenario, seed, None, |_, _, _| {})
        });
        assert!(
            outcome.complete(),
            "retry must recover the poisoned episode"
        );
        assert_eq!(outcome.runs[1].attempts, 2);
        assert!(outcome.runs.iter().all(|r| r.record.steps > 0));

        let dir = std::env::temp_dir().join("repro-bench-resilience-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("partial.csv");
        outcome
            .to_csv()
            .write_to(&path)
            .expect("export partial CSV");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 4, "header + 3 episodes");
    }

    #[test]
    fn partial_csv_has_status_for_every_requested_episode() {
        let outcome = run_cell(
            3,
            0,
            &ResilienceConfig {
                max_attempts: 1,
                cell_budget: None,
            },
            |seed| {
                if seed == 1 {
                    panic!("boom");
                }
                fake_record(seed)
            },
        );
        let text = outcome.to_csv().to_csv_string();
        assert_eq!(outcome.to_csv().len(), 3);
        assert!(text.contains("ok"));
        assert!(text.contains("failed"));
        assert!(text
            .lines()
            .next()
            .is_some_and(|h| h.starts_with("episode,seed,status")));
    }
}
