//! The real multi-threaded inference server.
//!
//! Worker threads pop micro-batches from one [`BoundedQueue`], run the
//! shared [`Pipeline`] core, and resolve each request's [`ResponseSlot`]
//! exactly once. A supervisor thread watches for dead workers (injected
//! kills, or any panic caught in the batch path) and respawns them after
//! rescuing the in-flight batch back onto the queue front — no request is
//! ever silently lost to a crash. Clients block on their slot with a
//! deadline and claim `TimedOut` themselves when the service is too slow,
//! so every submission resolves even if the server wedges.
//!
//! The slot is the exactly-once point: whichever side resolves first
//! (worker answer, client timeout, admission shed) records the outcome
//! into the shared counters; the loser's resolution is a no-op. At
//! [`Server::shutdown`] the queue closes, workers drain what remains, and
//! the merged [`ServeReport`] is returned.

use crate::config::ServeConfig;
use crate::faults::{FaultCursor, FaultPlan, WorkerFault};
use crate::ladder::{Ladder, Pressure, Rung};
use crate::pipeline::{DetectorStream, Pipeline, PipelineStats};
use crate::queue::{BoundedQueue, PushError};
use crate::report::ServeReport;
use crate::request::{Counters, Outcome, Request, ShedReason};
use drive_metrics::histo::LatencyHistogram;
use drive_nn::gaussian::GaussianPolicy;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where a request's one outcome lands. Resolution is first-wins: the
/// worker's answer, the client's timeout claim, and the admission shed
/// path all race safely.
pub struct ResponseSlot {
    state: Mutex<Option<Outcome>>,
    done: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        ResponseSlot {
            state: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Option<Outcome>> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Installs `outcome` if the slot is still open. Returns whether this
    /// call won the race (and therefore owns the counting).
    fn resolve(&self, outcome: Outcome) -> bool {
        let mut g = self.lock();
        if g.is_some() {
            return false;
        }
        *g = Some(outcome);
        drop(g);
        self.done.notify_all();
        true
    }

    /// Blocks up to `timeout` for a resolution.
    fn wait(&self, timeout: Duration) -> Option<Outcome> {
        let deadline = Instant::now() + timeout;
        let mut g = self.lock();
        while g.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .done
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            g = guard;
        }
        g.clone()
    }
}

struct QueuedRequest {
    req: Request,
    slot: Arc<ResponseSlot>,
}

struct Shared {
    config: ServeConfig,
    policy: Arc<GaussianPolicy>,
    plan: FaultPlan,
    queue: BoundedQueue<QueuedRequest>,
    epoch: Instant,
    next_id: AtomicU64,
    counters: Mutex<Counters>,
    latency: Mutex<LatencyHistogram>,
    ladder: Mutex<Ladder>,
    rung: AtomicU8,
    detector: Mutex<DetectorStream>,
    cursors: Mutex<Vec<FaultCursor>>,
    stalls: AtomicU32,
    closing: AtomicBool,
}

fn rung_to_u8(r: Rung) -> u8 {
    match r {
        Rung::Full => 0,
        Rung::NoDetector => 1,
        Rung::Fallback => 2,
    }
}

fn rung_from_u8(v: u8) -> Rung {
    match v {
        0 => Rung::Full,
        1 => Rung::NoDetector,
        _ => Rung::Fallback,
    }
}

impl Shared {
    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn rung(&self) -> Rung {
        rung_from_u8(self.rung.load(Ordering::Acquire))
    }

    fn guarded<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        match m.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// The exactly-once counting point: whoever wins the slot records the
    /// outcome; losers change nothing.
    fn resolve_counted(&self, slot: &ResponseSlot, outcome: Outcome) -> bool {
        if !slot.resolve(outcome.clone()) {
            return false;
        }
        if let Some(l) = outcome.latency_us() {
            Self::guarded(&self.latency).record(l);
        }
        Self::guarded(&self.counters).record(&outcome);
        true
    }
}

enum WorkerExit {
    Drained,
    Killed,
}

struct WorkerOut {
    exit: WorkerExit,
    stats: PipelineStats,
    corrupted: u64,
}

fn worker_main(shared: Arc<Shared>, slot_idx: usize, generation: u32) -> WorkerOut {
    let stream_id = slot_idx as u64 * 1_000 + u64::from(generation);
    let mut pipeline = Pipeline::new(
        Arc::clone(&shared.policy),
        &shared.config,
        Some(shared.plan.corruption_injector(stream_id)),
    );
    let mut my_rung = shared.rung();
    let out = |exit: WorkerExit, p: &Pipeline| WorkerOut {
        exit,
        stats: *p.stats(),
        corrupted: p.corrupted_values(),
    };
    loop {
        let Some(batch) = shared.queue.pop_batch(
            shared.config.max_batch,
            Duration::from_millis(20),
            Duration::from_micros(shared.config.batch_window_us),
        ) else {
            return out(WorkerExit::Drained, &pipeline); // drain complete
        };
        if batch.is_empty() {
            continue;
        }
        let now = shared.now_us();
        let fault = Shared::guarded(&shared.cursors)[slot_idx].due(now);
        match fault {
            Some(WorkerFault::Kill { .. }) => {
                // Die "mid-service": the supervisor rescues the batch via
                // the queue front and respawns this slot.
                shared.queue.requeue_front(batch);
                return out(WorkerExit::Killed, &pipeline);
            }
            Some(WorkerFault::Stall { dur_us, .. }) => {
                shared.stalls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(dur_us));
            }
            None => {}
        }

        let rung = shared.rung();
        if rung != my_rung {
            pipeline.on_rung_change(rung);
            my_rung = rung;
        }

        // Expire what aged out while queued.
        let now = shared.now_us();
        let mut misses = 0u32;
        let mut live = Vec::with_capacity(batch.len());
        for q in batch {
            if q.req.expires_at_us() < now {
                if shared.resolve_counted(
                    &q.slot,
                    Outcome::TimedOut {
                        waited_us: now.saturating_sub(q.req.enqueued_at_us),
                    },
                ) {
                    misses += 1;
                }
            } else {
                live.push(q);
            }
        }
        if live.is_empty() {
            let next = Shared::guarded(&shared.ladder).observe(
                now,
                Pressure {
                    queue_depth: shared.queue.len(),
                    queue_capacity: shared.config.queue_capacity,
                    deadline_misses: misses,
                    alarm: false,
                },
            );
            shared.rung.store(rung_to_u8(next), Ordering::Release);
            continue;
        }

        let mut obs: Vec<Vec<f32>> = live.iter().map(|q| q.req.obs.clone()).collect();
        let processed = catch_unwind(AssertUnwindSafe(|| {
            if rung == Rung::Full {
                let mut stream = Shared::guarded(&shared.detector);
                pipeline.process(rung, &mut obs, Some(&mut stream))
            } else {
                pipeline.process(rung, &mut obs, None)
            }
        }));
        let result = match processed {
            Ok(r) => r,
            Err(_) => {
                // A genuine panic in the batch path: rescue the batch and
                // let the supervisor replace this worker (the pipeline
                // state is suspect after unwinding through it).
                shared.queue.requeue_front(live);
                return out(WorkerExit::Killed, &pipeline);
            }
        };

        let finish = shared.now_us();
        for (q, action) in live.iter().zip(&result.actions) {
            let latency_us = finish.saturating_sub(q.req.enqueued_at_us);
            let outcome = if rung == Rung::Full {
                Outcome::Served {
                    action: *action,
                    latency_us,
                }
            } else {
                Outcome::Degraded {
                    rung,
                    action: *action,
                    latency_us,
                }
            };
            shared.resolve_counted(&q.slot, outcome);
        }
        let next = Shared::guarded(&shared.ladder).observe(
            finish,
            Pressure {
                queue_depth: shared.queue.len(),
                queue_capacity: shared.config.queue_capacity,
                deadline_misses: misses,
                alarm: result.alarm,
            },
        );
        shared.rung.store(rung_to_u8(next), Ordering::Release);
        if next != my_rung {
            pipeline.on_rung_change(next);
            my_rung = next;
        }
    }
}

struct SupervisorOut {
    respawns: u32,
    stats: PipelineStats,
    corrupted: u64,
}

fn supervisor_main(
    shared: Arc<Shared>,
    mut slots: Vec<Option<JoinHandle<WorkerOut>>>,
    mut generations: Vec<u32>,
) -> SupervisorOut {
    let mut respawns = 0u32;
    let mut stats = PipelineStats::default();
    let mut corrupted = 0u64;
    loop {
        let closing = shared.closing.load(Ordering::Acquire);
        for i in 0..slots.len() {
            let finished = slots[i].as_ref().is_some_and(JoinHandle::is_finished);
            if !finished {
                continue;
            }
            let handle = slots[i].take().expect("checked above");
            let exit = match handle.join() {
                Ok(o) => {
                    stats.absorb(&o.stats);
                    corrupted += o.corrupted;
                    o.exit
                }
                // A panic that escaped the worker's own catch (should not
                // happen): treat as a kill; its stats are lost but its
                // batch was either resolved or still queued.
                Err(_) => WorkerExit::Killed,
            };
            let respawn = match exit {
                WorkerExit::Drained => false,
                // Respawn unless the drain is effectively over; a killed
                // worker's rescued batch still needs someone to run it.
                WorkerExit::Killed => !(closing && shared.queue.is_empty()),
            };
            if respawn {
                respawns += 1;
                generations[i] += 1;
                let shared2 = Arc::clone(&shared);
                let generation = generations[i];
                slots[i] = Some(std::thread::spawn(move || {
                    worker_main(shared2, i, generation)
                }));
            }
        }
        if closing && slots.iter().all(Option::is_none) {
            return SupervisorOut {
                respawns,
                stats,
                corrupted,
            };
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A cloneable client handle: submit observations, get typed outcomes.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Submits one observation frame and blocks for its outcome. Exactly
    /// one [`Outcome`] is returned per call, always — shed at admission,
    /// answered by a worker, or claimed as timed out by this client when
    /// the deadline (plus a grace period for in-flight batches) passes.
    pub fn request(&self, obs: Vec<f32>) -> Outcome {
        let shared = &self.shared;
        let enqueued_at_us = shared.now_us();
        Shared::guarded(&shared.counters).submitted += 1;
        let slot = Arc::new(ResponseSlot::new());
        let queued = QueuedRequest {
            req: Request {
                id: shared.next_id.fetch_add(1, Ordering::Relaxed),
                obs,
                enqueued_at_us,
                deadline_us: shared.config.deadline_us,
            },
            slot: Arc::clone(&slot),
        };
        if let Err((q, err)) = shared.queue.push(queued) {
            let reason = match err {
                PushError::Full => ShedReason::QueueFull,
                PushError::Closed => ShedReason::Closing,
            };
            let outcome = Outcome::Shed { reason };
            shared.resolve_counted(&q.slot, outcome.clone());
            return outcome;
        }
        // Wait past the deadline by a grace window so a batch dispatched
        // just-in-time can still land its answer.
        let grace_us = 4 * shared.config.batch_window_us + 20_000;
        let wait = Duration::from_micros(shared.config.deadline_us + grace_us);
        if let Some(outcome) = slot.wait(wait) {
            return outcome;
        }
        let waited_us = shared.now_us().saturating_sub(enqueued_at_us);
        let claim = Outcome::TimedOut { waited_us };
        if shared.resolve_counted(&slot, claim.clone()) {
            claim
        } else {
            slot.wait(Duration::ZERO)
                .expect("slot lost the race, so it is resolved")
        }
    }

    /// Current queue depth (for load generators spawning on backpressure).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// The rung currently serving.
    pub fn rung(&self) -> Rung {
        self.shared.rung()
    }
}

/// The running service: worker threads, a supervisor, and the shared
/// state. Create with [`Server::start`], stop with [`Server::shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<SupervisorOut>>,
}

impl Server {
    /// Validates the config, spawns the workers and the supervisor, and
    /// returns the running server.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`ServeConfig`] or a policy without the
    /// steering-readback observation feature.
    pub fn start(policy: Arc<GaussianPolicy>, config: ServeConfig, plan: FaultPlan) -> Server {
        config.validate().expect("serve config");
        assert!(
            policy.obs_dim() > crate::pipeline::STEER_FEATURE,
            "serving at the full rung needs the steer-readback feature"
        );
        let workers = config.workers;
        let cursors = (0..workers).map(|w| plan.cursor(w)).collect();
        let shared = Arc::new(Shared {
            detector: Mutex::new(DetectorStream::new(&config)),
            ladder: Mutex::new(Ladder::new(config.ladder)),
            queue: BoundedQueue::new(config.queue_capacity),
            rung: AtomicU8::new(rung_to_u8(Rung::Full)),
            counters: Mutex::new(Counters::default()),
            latency: Mutex::new(LatencyHistogram::new()),
            cursors: Mutex::new(cursors),
            stalls: AtomicU32::new(0),
            closing: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            epoch: Instant::now(),
            config,
            policy,
            plan,
        });
        let slots = (0..workers)
            .map(|i| {
                let shared2 = Arc::clone(&shared);
                Some(std::thread::spawn(move || worker_main(shared2, i, 0)))
            })
            .collect();
        let generations = vec![0u32; workers];
        let sup_shared = Arc::clone(&shared);
        let supervisor =
            std::thread::spawn(move || supervisor_main(sup_shared, slots, generations));
        Server {
            shared,
            supervisor: Some(supervisor),
        }
    }

    /// A cloneable client handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Graceful drain: stop admitting, let the workers finish everything
    /// queued, join them all, and return the merged report. Outstanding
    /// [`ServerHandle::request`] calls finish with `Shed(Closing)` or
    /// their worker's answer; once they have all returned, the report's
    /// counters reconcile.
    pub fn shutdown(mut self) -> ServeReport {
        self.shared.closing.store(true, Ordering::Release);
        self.shared.queue.close();
        let sup = self
            .supervisor
            .take()
            .expect("shutdown consumes the server")
            .join()
            .expect("supervisor never panics");
        let shared = &self.shared;
        let transitions = Shared::guarded(&shared.ladder).transitions().to_vec();
        ServeReport {
            counters: *Shared::guarded(&shared.counters),
            latency: Shared::guarded(&shared.latency).clone(),
            transitions,
            respawns: sup.respawns,
            stalls: shared.stalls.load(Ordering::Relaxed),
            corrupted_values: sup.corrupted,
            nonfinite_frames: sup.stats.nonfinite_frames,
            batches: sup.stats.batches,
            max_batch: sup.stats.max_batch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::OutcomeKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn policy() -> Arc<GaussianPolicy> {
        let mut rng = StdRng::seed_from_u64(11);
        Arc::new(GaussianPolicy::new(6, &[16], 2, &mut rng))
    }

    fn obs(i: u64) -> Vec<f32> {
        (0..6)
            .map(|j| {
                let x = drive_seed::splitmix64(i * 6 + j);
                ((x >> 11) as f64 / (1u64 << 53) as f64 * 0.4 - 0.2) as f32
            })
            .collect()
    }

    #[test]
    fn serves_requests_and_reconciles_on_shutdown() {
        let server = Server::start(policy(), ServeConfig::default(), FaultPlan::none(2));
        let handle = server.handle();
        let mut served = 0u64;
        for i in 0..20 {
            let out = handle.request(obs(i));
            if let Outcome::Served { action, .. } = out {
                assert!(action.steer.is_finite() && action.thrust.is_finite());
                served += 1;
            }
        }
        let report = server.shutdown();
        report.counters.reconcile().expect("books balance");
        assert_eq!(report.counters.submitted, 20);
        assert_eq!(report.counters.served, served);
        assert!(served > 0, "{}", report.render());
        assert!(report.batches > 0);
    }

    #[test]
    fn concurrent_clients_tally_matches_server_counters() {
        let server = Server::start(policy(), ServeConfig::default(), FaultPlan::none(2));
        let mut clients = Vec::new();
        for c in 0..4u64 {
            let handle = server.handle();
            clients.push(std::thread::spawn(move || {
                let mut tally = Counters::default();
                for i in 0..25u64 {
                    tally.submitted += 1;
                    tally.record(&handle.request(obs(c * 1_000 + i)));
                }
                tally
            }));
        }
        let mut client_side = Counters::default();
        for c in clients {
            client_side.merge(&c.join().expect("client thread"));
        }
        let report = server.shutdown();
        assert_eq!(
            report.counters, client_side,
            "server books must equal the sum of client tallies"
        );
        report.counters.reconcile().expect("balanced");
    }

    #[test]
    fn injected_kill_is_respawned_and_nothing_is_lost() {
        let plan = FaultPlan {
            per_worker: vec![vec![WorkerFault::Kill { at_us: 0 }], Vec::new()],
            corruption: drive_sim::faults::FaultSchedule::none(),
        };
        let server = Server::start(policy(), ServeConfig::default(), plan);
        let handle = server.handle();
        let mut kinds = Vec::new();
        for i in 0..30 {
            kinds.push(handle.request(obs(i)).kind());
        }
        let report = server.shutdown();
        report.counters.reconcile().expect("books balance");
        assert_eq!(report.counters.submitted, 30);
        assert!(report.respawns >= 1, "{}", report.render());
        // Every request resolved with a real outcome kind.
        assert!(kinds.iter().all(|k| matches!(
            k,
            OutcomeKind::Served | OutcomeKind::Degraded | OutcomeKind::TimedOut
        )));
    }

    #[test]
    fn shutdown_sheds_new_requests_as_closing() {
        let server = Server::start(policy(), ServeConfig::default(), FaultPlan::none(2));
        let handle = server.handle();
        let _ = handle.request(obs(0));
        let report = server.shutdown();
        let out = handle.request(obs(1));
        assert_eq!(
            out,
            Outcome::Shed {
                reason: ShedReason::Closing
            }
        );
        // The post-shutdown shed still resolved exactly once client-side;
        // the drained report covers everything submitted before it.
        report.counters.reconcile().expect("balanced");
    }
}
