//! Overload integration test (threaded server): under saturating load and
//! injected faults, every request resolves with exactly one typed outcome,
//! the degradation ladder engages strictly in order, and the server's
//! counters reconcile with the sum of per-client tallies.

use drive_serve::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

use drive_nn::gaussian::GaussianPolicy;
use drive_serve::config::ServeConfig;
use drive_serve::faults::FaultPlanConfig;
use drive_serve::ladder::TransitionReason;

fn policy() -> Arc<GaussianPolicy> {
    let mut rng = StdRng::seed_from_u64(23);
    Arc::new(GaussianPolicy::new(6, &[16], 2, &mut rng))
}

fn obs(i: u64) -> Vec<f32> {
    (0..6)
        .map(|j| {
            let x = drive_seed::splitmix64(i * 6 + j);
            ((x >> 11) as f64 / (1u64 << 53) as f64 * 0.4 - 0.2) as f32
        })
        .collect()
}

/// Each transition must move exactly one rung — except a detector alarm,
/// which may jump straight to the fallback.
fn ladder_engages_in_order(transitions: &[Transition]) {
    let mut current = Rung::Full;
    for t in transitions {
        assert_eq!(t.from, current, "transition log must chain: {t}");
        match t.reason {
            TransitionReason::DetectorAlarm => assert_eq!(t.to, Rung::Fallback, "{t}"),
            TransitionReason::Recovered => assert_eq!(t.to, t.from.ascend(), "{t}"),
            _ => assert_eq!(t.to, t.from.descend(), "one rung at a time: {t}"),
        }
        current = t.to;
    }
}

#[test]
fn saturating_load_with_faults_keeps_the_books_and_the_order() {
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 16,
        max_batch: 4,
        batch_window_us: 1_000,
        deadline_us: 30_000,
        ..ServeConfig::default()
    };
    // A fault plan over the test's rough wall-clock horizon: kills and
    // stalls land mid-run, and corruption pressure alarms the detector.
    let plan = FaultPlan::seeded(
        7,
        config.workers,
        400_000,
        &FaultPlanConfig {
            kills: 2,
            stalls: 2,
            stall_us: 20_000,
            corrupt_rate: 0.2,
        },
    );
    let server = Server::start(policy(), config, plan);

    let clients = 8u64;
    let per_client = 100u64;
    let mut handles = Vec::new();
    for c in 0..clients {
        let handle = server.handle();
        handles.push(std::thread::spawn(move || {
            let mut tally = Counters::default();
            for i in 0..per_client {
                tally.submitted += 1;
                // Exactly one typed outcome per request, by construction of
                // the API: `request` always returns an Outcome.
                let outcome = handle.request(obs(c * 10_000 + i));
                tally.record(&outcome);
            }
            tally
        }));
    }
    let mut client_side = Counters::default();
    for h in handles {
        client_side.merge(&h.join().expect("client thread"));
    }

    let report = server.shutdown();
    report
        .counters
        .reconcile()
        .expect("no silent request loss under overload + faults");
    assert_eq!(
        report.counters,
        client_side,
        "server counters must reconcile with the summed client tallies\n{}",
        report.render()
    );
    assert_eq!(report.counters.submitted, clients * per_client);
    assert!(
        report.counters.served + report.counters.degraded > 0,
        "the service must keep answering through the fault schedule\n{}",
        report.render()
    );
    ladder_engages_in_order(&report.transitions);
}

#[test]
fn clean_light_load_stays_at_the_full_rung() {
    let server = Server::start(policy(), ServeConfig::default(), FaultPlan::none(2));
    let handle = server.handle();
    let mut tally = Counters::default();
    for i in 0..40 {
        tally.submitted += 1;
        tally.record(&handle.request(obs(i)));
        // Light load: spaced-out lone requests.
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let report = server.shutdown();
    report.counters.reconcile().expect("balanced");
    assert_eq!(report.counters, tally);
    assert_eq!(report.counters.shed(), 0, "{}", report.render());
    assert!(
        report.counters.served > 0,
        "light load is answered at the full rung\n{}",
        report.render()
    );
    ladder_engages_in_order(&report.transitions);
}
