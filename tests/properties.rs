//! Property-based tests (proptest) of core invariants across the stack.

use ad_action_attacks::prelude::*;
use proptest::prelude::*;

proptest! {
    // ---------- geometry ----------

    /// Angle normalization always lands in [-pi, pi).
    #[test]
    fn normalize_angle_in_range(a in -1000.0f64..1000.0) {
        let n = normalize_angle(a);
        prop_assert!((-std::f64::consts::PI..std::f64::consts::PI).contains(&n));
        // And is congruent to the input mod 2*pi.
        let diff = (a - n) / std::f64::consts::TAU;
        prop_assert!((diff - diff.round()).abs() < 1e-6);
    }

    /// Rotation preserves vector length.
    #[test]
    fn rotation_preserves_norm(x in -100.0f64..100.0, y in -100.0f64..100.0, a in -10.0f64..10.0) {
        let v = Vec2::new(x, y);
        prop_assert!((v.rotate(a).norm() - v.norm()).abs() < 1e-9);
    }

    /// OBB intersection is symmetric.
    #[test]
    fn obb_intersection_symmetric(
        x in -10.0f64..10.0, y in -10.0f64..10.0,
        h1 in -3.2f64..3.2, h2 in -3.2f64..3.2,
        l1 in 0.5f64..6.0, w1 in 0.5f64..3.0,
        l2 in 0.5f64..6.0, w2 in 0.5f64..3.0,
    ) {
        let a = Obb::new(Vec2::ZERO, l1, w1, h1);
        let b = Obb::new(Vec2::new(x, y), l2, w2, h2);
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    /// A box always contains its own center and intersects itself.
    #[test]
    fn obb_contains_center(x in -10.0f64..10.0, y in -10.0f64..10.0, h in -3.2f64..3.2) {
        let b = Obb::new(Vec2::new(x, y), 4.0, 2.0, h);
        prop_assert!(b.contains(b.center));
        prop_assert!(b.intersects(&b));
    }

    /// Pose local/world transforms are inverse of each other.
    #[test]
    fn pose_transform_round_trip(
        px in -50.0f64..50.0, py in -50.0f64..50.0, h in -3.2f64..3.2,
        lx in -20.0f64..20.0, ly in -20.0f64..20.0,
    ) {
        let pose = Pose::new(px, py, h);
        let local = Vec2::new(lx, ly);
        let back = pose.world_to_local(pose.local_to_world(local));
        prop_assert!((back - local).norm() < 1e-9);
    }

    // ---------- vehicle / Eq. (1) ----------

    /// Under arbitrary bounded commands, the realized actuation respects
    /// the mechanical limits and the speed stays in [0, max].
    #[test]
    fn vehicle_actuation_and_speed_bounded(cmds in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 1..60)) {
        let mut v = Vehicle::new(VehicleParams::default(), Pose::new(0.0, 0.0, 0.0), 10.0);
        for (s, t) in cmds {
            v.step(Actuation::new(s, t), 0.1, 5);
            prop_assert!(v.actuation.steer.abs() <= 1.0);
            prop_assert!(v.actuation.thrust.abs() <= 1.0);
            prop_assert!(v.speed >= 0.0 && v.speed <= v.params.max_speed);
            prop_assert!(v.pose.heading >= -std::f64::consts::PI && v.pose.heading < std::f64::consts::PI);
        }
    }

    /// Eq. (1) smoothing: one step moves the actuation at most
    /// (1 - alpha) * |command - previous| towards the command.
    #[test]
    fn eq1_is_a_contraction(prev in -1.0f64..1.0, cmd in -1.0f64..1.0) {
        let mut v = Vehicle::new(VehicleParams::default(), Pose::new(0.0, 0.0, 0.0), 5.0);
        v.actuation.steer = prev;
        v.step(Actuation::new(cmd, 0.0), 0.1, 1);
        let alpha = v.params.alpha;
        let expected = (1.0 - alpha) * cmd + alpha * prev;
        prop_assert!((v.actuation.steer - expected).abs() < 1e-9);
    }

    // ---------- attack budget ----------

    /// Budget scaling never exceeds epsilon in magnitude.
    #[test]
    fn budget_scale_bounded(eps in 0.0f64..2.0, raw in -10.0f64..10.0) {
        let b = AttackBudget::new(eps);
        prop_assert!(b.scale(raw).abs() <= eps + 1e-12);
        // Sign preserved (raw clamped, not flipped).
        if raw.abs() > 1e-9 && eps > 0.0 {
            prop_assert!(b.scale(raw) * raw >= 0.0);
        }
    }

    // ---------- metrics ----------

    /// Box statistics are ordered min <= q1 <= median <= q3 <= max and the
    /// mean lies within [min, max].
    #[test]
    fn box_stats_ordered(samples in prop::collection::vec(-1e3f64..1e3, 1..50)) {
        let s = BoxStats::from_samples(&samples);
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
    }

    /// Effort windows partition the points: counts sum to the input size
    /// and each success rate is a valid probability.
    #[test]
    fn effort_windows_partition(points in prop::collection::vec((0.0f64..2.0, any::<bool>()), 0..100)) {
        let pts: Vec<ScatterPoint> = points
            .iter()
            .map(|(e, s)| ScatterPoint { effort: *e, deviation_rmse: 0.0, success: *s })
            .collect();
        let windows = fig8_windows(&pts);
        let total: usize = windows.iter().map(|w| w.count).sum();
        prop_assert_eq!(total, pts.len());
        for w in &windows {
            prop_assert!((0.0..=1.0).contains(&w.success_rate));
        }
    }

    // ---------- replay buffer ----------

    /// The replay buffer never exceeds capacity and sampling always
    /// returns the requested batch shape.
    #[test]
    fn replay_capacity_respected(n in 1usize..200, cap in 1usize..50) {
        use rand::SeedableRng;
        let mut rb = ReplayBuffer::new(cap, 2, 1);
        for i in 0..n {
            rb.push(Transition {
                obs: vec![i as f32, 0.0],
                action: vec![0.0],
                reward: 0.0,
                next_obs: vec![0.0, 0.0],
                terminal: false,
            });
            prop_assert!(rb.len() <= cap);
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let batch = rb.sample(7, &mut rng);
        prop_assert_eq!(batch.len(), 7);
    }

    // ---------- neural networks ----------

    /// Tanh-Gaussian policies always emit in-range actions with finite
    /// log-probabilities, whatever the observation.
    #[test]
    fn policy_actions_always_bounded(obs in prop::collection::vec(-100.0f32..100.0, 4), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let policy = GaussianPolicy::new(4, &[8], 2, &mut rng);
        let m = Mat::from_row(&obs);
        let s = policy.sample(&m, &mut rng);
        for &a in s.actions().data() {
            prop_assert!((-1.0..=1.0).contains(&a));
        }
        for &lp in s.log_prob() {
            prop_assert!(lp.is_finite());
        }
    }

    /// Checkpoint encode/decode round-trips arbitrary trained policies.
    #[test]
    fn checkpoint_round_trip(seed in 0u64..1000, obs_dim in 1usize..6, action_dim in 1usize..3) {
        use ad_action_attacks::nn::checkpoint::{decode_policy, encode_policy};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let policy = GaussianPolicy::new(obs_dim, &[6], action_dim, &mut rng);
        let back = decode_policy(&encode_policy(&policy)).unwrap();
        let obs = Mat::from_row(&vec![0.37f32; obs_dim]);
        prop_assert_eq!(policy.mean_action(&obs), back.mean_action(&obs));
    }

    // ---------- road ----------

    /// Every lane's center is on the road and maps back to its own index.
    #[test]
    fn lane_centers_consistent(num_lanes in 1usize..6, width in 2.5f64..4.5) {
        let road = Road::new(num_lanes, width, 500.0);
        for lane in 0..num_lanes {
            let y = road.lane_center_y(lane);
            prop_assert_eq!(road.lane_of(y), lane);
            prop_assert!(road.on_road(Vec2::new(10.0, y)));
            prop_assert!(road.lane_offset(y).abs() < 1e-9);
        }
    }

    /// Welford running stats merged from arbitrary splits equal the
    /// sequential computation.
    #[test]
    fn running_stats_merge_invariant(
        data in prop::collection::vec(-1e3f64..1e3, 1..60),
        split in 0usize..60,
    ) {
        use ad_action_attacks::rl::stats::RunningStats;
        let split = split.min(data.len());
        let mut all = RunningStats::new();
        for &x in &data { all.push(x); }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..split] { a.push(x); }
        for &x in &data[split..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        prop_assert!((a.mean() - all.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - all.variance()).abs() < 1e-4);
    }

    /// The EMA always stays within the range of its inputs.
    #[test]
    fn ema_bounded_by_inputs(
        alpha in 0.01f64..1.0,
        xs in prop::collection::vec(-100.0f64..100.0, 1..40),
    ) {
        use ad_action_attacks::rl::stats::Ema;
        let mut ema = Ema::new(alpha);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &x in &xs {
            let v = ema.push(x);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    /// The ASCII renderer always draws exactly one ego marker and never
    /// draws vehicles outside the strip.
    #[test]
    fn render_strip_well_formed(steps in 0usize..60, thrust in -1.0f64..1.0) {
        use ad_action_attacks::sim::render::{render_strip, RenderConfig};
        let mut world = World::new(Scenario::default());
        for _ in 0..steps {
            world.step(Actuation::new(0.0, thrust));
            if world.is_done() { break; }
        }
        let text = render_strip(&world, &RenderConfig::default());
        prop_assert_eq!(text.matches('E').count(), 1);
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len(), 6);
        for lane_line in &lines[2..5] {
            prop_assert_eq!(lane_line.chars().count(), RenderConfig::default().cols);
        }
    }

    /// Quintile lane-change paths always end on the target lane center
    /// with near-zero heading.
    #[test]
    fn lane_change_path_terminates_on_target(
        from_lane in 0usize..3, to_lane in 0usize..3,
        dist in 15.0f64..60.0,
    ) {
        let road = Road::default();
        let y0 = road.lane_center_y(from_lane);
        let n = (dist / 2.0) as usize + 10;
        let path = lane_change_path(&road, y0, to_lane, 0.0, dist, n, 2.0, 16.0);
        let last = path.waypoints().last().unwrap();
        prop_assert!((last.position.y - road.lane_center_y(to_lane)).abs() < 1e-6);
        prop_assert!(last.heading.abs() < 1e-6);
    }

    // ---------- fault injection ----------

    /// A zero-rate fault schedule is a byte-identical no-op: the full
    /// episode record of a faulted run equals the clean run's.
    #[test]
    fn zero_rate_fault_schedule_is_noop(seed in 0u64..500, fault_seed in 0u64..500) {
        let scenario = Scenario::default();
        let mut a = ModularAgent::new(ModularConfig::default(), 1);
        let mut b = ModularAgent::new(ModularConfig::default(), 1);
        let clean = run_episode(&mut a, &scenario, seed, None, |_, _, _| {});
        let mut inj = FaultInjector::new(&FaultSchedule::benign(0.0, fault_seed));
        let faulted =
            run_episode_with_faults(&mut b, &scenario, seed, None, Some(&mut inj), |_, _, _| {});
        prop_assert_eq!(clean, faulted);
        prop_assert_eq!(inj.stats().corrupted_values, 0);
    }

    /// Same seed + same fault schedule produce identical episode traces,
    /// byte for byte (CSV serialization included).
    #[test]
    fn same_seed_and_schedule_give_identical_traces(
        seed in 0u64..500,
        intensity in 0.2f64..1.0,
    ) {
        let scenario = Scenario::default();
        let schedule = FaultSchedule::benign(intensity, 0xdead);
        let run = |seed: u64| {
            let mut agent = ModularAgent::new(ModularConfig::default(), 1);
            let mut inj = FaultInjector::for_episode(&schedule, seed);
            let mut world_trace: Option<EpisodeTrace> = None;
            let record = run_episode_with_faults(
                &mut agent,
                &scenario,
                seed,
                None,
                Some(&mut inj),
                |world, outcome, delta| {
                    let trace = world_trace.get_or_insert_with(|| EpisodeTrace::for_world(world));
                    trace.capture(world, delta, outcome.collision);
                },
            );
            (record, world_trace.map(|t| t.to_csv()).unwrap_or_default())
        };
        let (rec_a, trace_a) = run(seed);
        let (rec_b, trace_b) = run(seed);
        prop_assert_eq!(rec_a, rec_b);
        prop_assert_eq!(trace_a, trace_b);
    }

    /// Non-finite steering commands never poison vehicle state: the world
    /// sanitizes them, counts them, and stays finite.
    #[test]
    fn nonfinite_commands_never_poison_state(steps in 1usize..60, bad_every in 2usize..7) {
        let mut world = World::new(Scenario::default());
        let mut expected_bad = 0;
        for t in 0..steps {
            let cmd = if t % bad_every == 0 {
                expected_bad += 1;
                Actuation { steer: f64::NAN, thrust: f64::INFINITY }
            } else {
                Actuation::new(0.1, 0.5)
            };
            world.step(cmd);
            if world.is_done() { break; }
            prop_assert!(world.ego().pose.position.x.is_finite());
            prop_assert!(world.ego().speed.is_finite());
        }
        prop_assert!(world.nonfinite_action_count() <= expected_bad);
        prop_assert!(world.nonfinite_action_count() > 0);
    }
}
