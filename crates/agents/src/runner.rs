//! Episode runner: drives any [`Agent`] through a scenario, optionally with
//! a steering attacker in the loop, and records everything the metrics need.

use crate::reward::{RewardConfig, RewardShaper};
use crate::Agent;
use drive_sim::faults::FaultInjector;
use drive_sim::record::EpisodeRecord;
use drive_sim::scenario::Scenario;
use drive_sim::vehicle::Actuation;
use drive_sim::world::{StepOutcome, World};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An attacker that perturbs the victim's steering variation each step.
///
/// Implementations live in `attack-core` (learned camera/IMU attackers,
/// the geometric oracle). The returned `delta` is *already scaled by the
/// attack budget*; the runner adds it to the victim's command and re-clamps
/// to the mechanical limit, exactly as Section IV-C specifies.
pub trait SteerAttacker {
    /// Called at episode start.
    fn reset(&mut self, world: &World);
    /// Returns the perturbation `delta_t` for the current state.
    fn delta(&mut self, world: &World) -> f64;
}

/// Runs one episode and returns its record.
///
/// `on_step` is invoked after every world step with the post-step world,
/// the outcome, and the injected perturbation — attack harnesses use it to
/// accumulate the adversarial reward.
pub fn run_episode(
    agent: &mut dyn Agent,
    scenario: &Scenario,
    seed: u64,
    attacker: Option<&mut dyn SteerAttacker>,
    on_step: impl FnMut(&World, &StepOutcome, f64),
) -> EpisodeRecord {
    run_episode_with_faults(agent, scenario, seed, attacker, None, on_step)
}

/// Runs one episode with an optional actuation-side fault injector in the
/// loop: the perturbed command passes through
/// [`FaultInjector::corrupt_actuation`] before the simulator steps, so
/// stuck / dead-zone / delayed actuators act on exactly what the plant
/// would have received. The injector's step clock is advanced here — do
/// not share one injector instance between the runner and a sensor
/// wrapper.
///
/// With `faults: None` (or a no-op schedule) this is bit-identical to
/// [`run_episode`].
pub fn run_episode_with_faults(
    agent: &mut dyn Agent,
    scenario: &Scenario,
    seed: u64,
    mut attacker: Option<&mut dyn SteerAttacker>,
    mut faults: Option<&mut FaultInjector>,
    mut on_step: impl FnMut(&World, &StepOutcome, f64),
) -> EpisodeRecord {
    let episode_scenario = {
        let mut rng = StdRng::seed_from_u64(seed);
        scenario.jittered(&mut rng)
    };
    let mut world = World::new(episode_scenario);
    agent.reset(&world);
    if let Some(atk) = attacker.as_deref_mut() {
        atk.reset(&world);
    }
    let mut shaper = RewardShaper::new(
        RewardConfig::default(),
        crate::behavior::BehaviorConfig::default(),
        world.scenario().road.lane_of(world.ego().pose.position.y),
    );
    shaper.reset(&world);

    let mut record = EpisodeRecord {
        dt: world.scenario().dt,
        ..EpisodeRecord::default()
    };

    while !world.is_done() {
        let nominal = agent.act(&world);
        let delta = match attacker.as_deref_mut() {
            Some(atk) => atk.delta(&world),
            None => 0.0,
        };
        let perturbed = Actuation::new(nominal.steer + delta, nominal.thrust);
        let realized = match faults.as_deref_mut() {
            Some(inj) => {
                inj.begin_step();
                inj.corrupt_actuation(perturbed)
            }
            None => perturbed,
        };
        let outcome = world.step(realized);
        let reward = shaper.step(&world, &outcome);

        record.steps += 1;
        record.nominal_return += reward;
        record.deviation.push(shaper.last_deviation());
        record.perturbation.push(delta.abs());
        if delta.abs() > drive_sim::record::ATTACK_START_THRESHOLD && record.attack_start.is_none()
        {
            record.attack_start = Some(outcome.step);
        }
        record.passed = outcome.passed;
        record.collision = outcome.collision;
        record.termination = outcome.termination;
        on_step(&world, &outcome, delta);
    }
    record.nonfinite_actions = world.nonfinite_action_count();
    record
}

/// Runs `episodes` episodes with seeds `base_seed..`, returning all records.
pub fn run_episodes(
    agent: &mut dyn Agent,
    scenario: &Scenario,
    episodes: usize,
    base_seed: u64,
) -> Vec<EpisodeRecord> {
    (0..episodes)
        .map(|e| run_episode(agent, scenario, base_seed + e as u64, None, |_, _, _| {}))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::{ModularAgent, ModularConfig};
    use drive_sim::world::Termination;

    #[test]
    fn modular_agent_full_episode_record() {
        let mut agent = ModularAgent::new(ModularConfig::default(), 1);
        let scenario = Scenario::default();
        let rec = run_episode(&mut agent, &scenario, 42, None, |_, _, _| {});
        assert_eq!(rec.steps, scenario.max_steps);
        assert_eq!(rec.termination, Some(Termination::TimeLimit));
        assert!(rec.collision.is_none());
        assert!(rec.nominal_return > 100.0, "return {}", rec.nominal_return);
        assert_eq!(rec.attack_start, None);
        assert_eq!(rec.attack_effort(), 0.0);
    }

    #[test]
    fn runner_is_deterministic_per_seed() {
        let scenario = Scenario::default();
        let mut a1 = ModularAgent::new(ModularConfig::default(), 1);
        let mut a2 = ModularAgent::new(ModularConfig::default(), 1);
        let r1 = run_episode(&mut a1, &scenario, 9, None, |_, _, _| {});
        let r2 = run_episode(&mut a2, &scenario, 9, None, |_, _, _| {});
        assert_eq!(r1, r2);
    }

    #[test]
    fn constant_attacker_is_recorded() {
        struct Push(f64);
        impl SteerAttacker for Push {
            fn reset(&mut self, _world: &World) {}
            fn delta(&mut self, _world: &World) -> f64 {
                self.0
            }
        }
        let mut agent = ModularAgent::new(ModularConfig::default(), 1);
        let scenario = Scenario::default();
        let mut atk = Push(0.3);
        let mut steps_seen = 0;
        let rec = run_episode(&mut agent, &scenario, 1, Some(&mut atk), |_, _, d| {
            assert_eq!(d, 0.3);
            steps_seen += 1;
        });
        assert_eq!(rec.attack_start, Some(0));
        assert!((rec.attack_effort() - 0.3).abs() < 1e-12);
        assert_eq!(steps_seen, rec.steps);
    }

    #[test]
    fn noop_faults_leave_episode_bit_identical() {
        use drive_sim::faults::{FaultInjector, FaultSchedule};
        let scenario = Scenario::default();
        let mut a1 = ModularAgent::new(ModularConfig::default(), 1);
        let mut a2 = ModularAgent::new(ModularConfig::default(), 1);
        let clean = run_episode(&mut a1, &scenario, 5, None, |_, _, _| {});
        let mut inj = FaultInjector::new(&FaultSchedule::benign(0.0, 123));
        let faulted =
            run_episode_with_faults(&mut a2, &scenario, 5, None, Some(&mut inj), |_, _, _| {});
        assert_eq!(clean, faulted);
    }

    #[test]
    fn faulted_episodes_are_deterministic_per_seed() {
        use drive_sim::faults::{FaultInjector, FaultSchedule};
        let scenario = Scenario::default();
        let schedule = FaultSchedule::benign(1.0, 77);
        let mut a1 = ModularAgent::new(ModularConfig::default(), 1);
        let mut a2 = ModularAgent::new(ModularConfig::default(), 1);
        let mut i1 = FaultInjector::for_episode(&schedule, 9);
        let mut i2 = FaultInjector::for_episode(&schedule, 9);
        let r1 = run_episode_with_faults(&mut a1, &scenario, 9, None, Some(&mut i1), |_, _, _| {});
        let r2 = run_episode_with_faults(&mut a2, &scenario, 9, None, Some(&mut i2), |_, _, _| {});
        assert_eq!(r1, r2);
    }

    #[test]
    fn run_episodes_returns_one_record_each() {
        let mut agent = ModularAgent::new(ModularConfig::default(), 1);
        let recs = run_episodes(&mut agent, &Scenario::default(), 3, 100);
        assert_eq!(recs.len(), 3);
        // Different seeds → different jitter → (almost surely) different returns.
        assert!(recs[0] != recs[1] || recs[1] != recs[2]);
    }
}
